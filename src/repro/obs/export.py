"""JSONL trace files: write, load, and merge across processes.

One trace file holds the observable record of one or more traced runs:

* a ``header`` line (schema version, so later readers can detect skew),
* one ``span`` line per completed :class:`~repro.obs.tracer.SpanRecord`,
* one ``metrics`` line per tracer with a
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`.

JSONL rather than one JSON document because the records must survive
the :class:`concurrent.futures.ProcessPoolExecutor` boundary in
:mod:`repro.sim.runner`: each worker writes its *own* per-job file
(atomically: tempfile + rename, the same discipline as
:class:`~repro.sim.runner.ResultCache`), and the parent concatenates
them with :func:`merge_traces` — line-oriented records merge by
appending, no tree surgery required.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import EventRecord, SpanRecord, Tracer

#: Bumped when the record layout changes incompatibly.  Version 2 added
#: ``event`` records (structured fault/error events); version-1 files
#: remain loadable.
TRACE_SCHEMA_VERSION = 2

#: Schema versions :func:`load_trace` understands.
SUPPORTED_TRACE_SCHEMAS = frozenset({1, TRACE_SCHEMA_VERSION})

#: File name of the merged whole-run trace inside a trace directory.
MERGED_TRACE_NAME = "trace.jsonl"


class TraceFormatError(ValueError):
    """A trace file that does not parse as schema-versioned JSONL."""


@dataclass
class TraceData:
    """Parsed content of a trace file."""

    spans: list[SpanRecord] = field(default_factory=list)
    events: list[EventRecord] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    trace_ids: list[str] = field(default_factory=list)

    @property
    def n_spans(self) -> int:
        return len(self.spans)

    @property
    def n_events(self) -> int:
        return len(self.events)


def _span_to_json(span: SpanRecord) -> dict:
    return {
        "type": "span",
        "name": span.name,
        "start_s": span.start_s,
        "duration_s": span.duration_s,
        "depth": span.depth,
        "parent": span.parent,
        "counters": dict(span.counters),
        "trace_id": span.trace_id,
    }


def _span_from_json(record: dict) -> SpanRecord:
    return SpanRecord(
        name=record["name"],
        start_s=float(record["start_s"]),
        duration_s=float(record["duration_s"]),
        depth=int(record["depth"]),
        parent=record.get("parent"),
        counters=dict(record.get("counters", {})),
        trace_id=record.get("trace_id", "run"),
    )


def _event_to_json(event: EventRecord) -> dict:
    return {
        "type": "event",
        "name": event.name,
        "fields": dict(event.fields),
        "trace_id": event.trace_id,
    }


def _event_from_json(record: dict) -> EventRecord:
    return EventRecord(
        name=record["name"],
        fields=dict(record.get("fields", {})),
        trace_id=record.get("trace_id", "run"),
    )


def _header_line() -> str:
    return json.dumps(
        {"type": "header", "schema": TRACE_SCHEMA_VERSION, "format": "repro-trace"}
    )


def write_trace(path: Union[str, Path], tracer: Tracer) -> Path:
    """Write one tracer's spans + metrics snapshot as a JSONL trace file.

    The write is atomic (tempfile + rename) so a crashed worker never
    leaves a half-written trace for the parent to choke on.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [_header_line()]
    lines.extend(json.dumps(_span_to_json(span)) for span in tracer.records)
    lines.extend(json.dumps(_event_to_json(event)) for event in tracer.events)
    snapshot = tracer.metrics.snapshot()
    if any(snapshot.values()):
        lines.append(
            json.dumps(
                {"type": "metrics", "trace_id": tracer.trace_id, **snapshot}
            )
        )
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text("\n".join(lines) + "\n", encoding="utf-8")
    tmp.replace(path)
    return path


def load_trace(path: Union[str, Path]) -> TraceData:
    """Parse a trace file (merged or per-job) back into records."""
    path = Path(path)
    data = TraceData()
    seen_ids: set[str] = set()
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceFormatError(
                    f"{path}:{line_number}: not valid JSON ({error})"
                ) from error
            kind = record.get("type")
            if kind == "header":
                schema = record.get("schema")
                if schema not in SUPPORTED_TRACE_SCHEMAS:
                    supported = sorted(SUPPORTED_TRACE_SCHEMAS)
                    raise TraceFormatError(
                        f"{path}: trace schema {schema!r} "
                        f"(this reader understands {supported})"
                    )
            elif kind == "span":
                span = _span_from_json(record)
                data.spans.append(span)
                if span.trace_id not in seen_ids:
                    seen_ids.add(span.trace_id)
                    data.trace_ids.append(span.trace_id)
            elif kind == "event":
                data.events.append(_event_from_json(record))
            elif kind == "metrics":
                data.metrics.merge(record)
            else:
                raise TraceFormatError(
                    f"{path}:{line_number}: unknown record type {kind!r}"
                )
    return data


def merge_traces(
    sources: Sequence[Union[str, Path]], out_path: Union[str, Path]
) -> Path:
    """Concatenate per-job trace files into one merged trace.

    Every source is parsed first (so a corrupt per-job file fails the
    merge loudly rather than poisoning the merged trace), then written
    back out as a single schema-versioned file.  This is the parent
    side of the process-pool story: workers wrote the sources,
    :func:`repro.sim.runner.run_grid` calls this once they are done.
    """
    out_path = Path(out_path)
    lines = [_header_line()]
    merged_metrics = MetricsRegistry()
    for source in sources:
        data = load_trace(source)
        lines.extend(json.dumps(_span_to_json(span)) for span in data.spans)
        lines.extend(json.dumps(_event_to_json(event)) for event in data.events)
        merged_metrics.merge(data.metrics.snapshot())
    snapshot = merged_metrics.snapshot()
    if any(snapshot.values()):
        lines.append(json.dumps({"type": "metrics", "trace_id": "merged", **snapshot}))
    out_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = out_path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text("\n".join(lines) + "\n", encoding="utf-8")
    tmp.replace(out_path)
    return out_path


def job_trace_files(directory: Union[str, Path]) -> list[Path]:
    """The per-job trace files a runner left in ``directory``, sorted."""
    return sorted(Path(directory).glob("job-*.jsonl"))


def merge_job_traces(
    directory: Union[str, Path], out_name: str = MERGED_TRACE_NAME
) -> Optional[Path]:
    """Merge every per-job trace in ``directory`` into one file.

    Returns the merged path, or None when there are no job traces
    (e.g. every grid cell came from the result cache).
    """
    directory = Path(directory)
    sources: Iterable[Path] = job_trace_files(directory)
    sources = list(sources)
    if not sources:
        return None
    return merge_traces(sources, directory / out_name)
