"""Counters, gauges and histograms for traced runs.

A :class:`MetricsRegistry` is the low-rate aggregate companion of the
span stream: spans answer *when and how long*, the registry answers
*how much in total* (packets dropped, macroblocks concealed, SAD
candidates evaluated) without a timestamped record per event.

Process-safety model: registries are **per-process** — each worker of
:func:`repro.sim.runner.run_grid` owns the registry of its job's
tracer, snapshots it into the job's JSONL trace file, and the parent
merges the snapshots (:meth:`MetricsRegistry.merge`).  There is no
shared-memory mutation across processes to get wrong.  Within a
process, every mutator takes an internal lock, so a registry may be
shared between threads (e.g. a future thread-pool runner).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Mapping


@dataclass
class HistogramSummary:
    """Streaming summary of observed values (no raw samples kept)."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }

    def merge(self, other: Mapping[str, float]) -> None:
        count = int(other.get("count", 0))
        if not count:
            return
        self.total += float(other.get("total", 0.0))
        self.minimum = min(self.minimum, float(other.get("min", 0.0)))
        self.maximum = max(self.maximum, float(other.get("max", 0.0)))
        self.count += count


class MetricsRegistry:
    """Named counters (monotonic), gauges (last value), histograms."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramSummary] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest value."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram ``name``."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = HistogramSummary()
            histogram.observe(value)

    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0)

    def histogram(self, name: str) -> HistogramSummary:
        return self._histograms.get(name, HistogramSummary())

    def snapshot(self) -> dict[str, Any]:
        """Plain-data view, stable for JSON export and cross-process merge."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: h.as_dict() for name, h in self._histograms.items()
                },
            }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram summaries add; gauges keep the merged-in
        value (last writer wins, matching their per-process semantics).
        """
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[name] = value
            for name, summary in snapshot.get("histograms", {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = HistogramSummary()
                histogram.merge(summary)

    def __bool__(self) -> bool:
        return bool(self._counters or self._gauges or self._histograms)


class NullMetricsRegistry(MetricsRegistry):
    """The no-op registry carried by the disabled tracer."""

    enabled = False

    def inc(self, name: str, value: float = 1.0) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None
