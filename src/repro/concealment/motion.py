"""Motion-vector-recovery concealment (extension).

Copy concealment assumes a lost macroblock didn't move; on panning or
fast content that assumption is exactly wrong.  The classic improvement
is *MV recovery*: estimate the lost macroblock's motion from the motion
vectors of its received neighbours (their per-component median — robust
to one outlier) and copy the motion-compensated block from the
reference instead of the colocated one.  On global motion every
neighbour agrees and the concealed block lands where the content
actually went.

This needs the decoded motion field, which
:class:`repro.codec.decoder.DecodeResult` exposes as ``mvs_pixels``;
the strategy falls back to plain copy when no field is available (e.g.
a totally lost frame).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.codec.types import MacroblockMode
from repro.concealment.base import ConcealmentStrategy
from repro.concealment.copy import CopyConcealment
from repro.obs import get_tracer


class MotionRecoveryConcealment(ConcealmentStrategy):
    """Conceal lost macroblocks at the median motion of their neighbours."""

    name = "motion-recovery"

    def __init__(self) -> None:
        self._fallback = CopyConcealment()

    def conceal(
        self,
        frame: np.ndarray,
        received: np.ndarray,
        reference: Optional[np.ndarray],
        mvs_pixels: Optional[np.ndarray] = None,
        modes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        result = self._fallback.conceal(frame, received, reference)
        if reference is None or mvs_pixels is None or received.all():
            return result

        mb_rows, mb_cols = received.shape
        pad = int(np.abs(mvs_pixels).max(initial=0)) + 1
        padded = np.pad(reference, pad, mode="edge")

        lost_rows, lost_cols = np.nonzero(~received)
        recovered = 0
        for row, col in zip(lost_rows, lost_cols):
            neighbour_mvs = []
            for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                nr, nc = row + dr, col + dc
                if not (0 <= nr < mb_rows and 0 <= nc < mb_cols):
                    continue
                if not received[nr, nc]:
                    continue
                if modes is not None and modes[nr, nc] is MacroblockMode.INTRA:
                    continue  # an intra neighbour carries no motion
                neighbour_mvs.append(mvs_pixels[nr, nc])
            if not neighbour_mvs:
                continue  # keep the copy fallback
            stack = np.stack(neighbour_mvs)
            dy = int(np.median(stack[:, 0]))
            dx = int(np.median(stack[:, 1]))
            if dy == 0 and dx == 0:
                continue  # copy fallback already is the zero-MV guess
            y = row * 16 + pad + dy
            x = col * 16 + pad + dx
            result[row * 16 : (row + 1) * 16, col * 16 : (col + 1) * 16] = (
                padded[y : y + 16, x : x + 16]
            )
            recovered += 1
        if recovered:
            get_tracer().metrics.inc("conceal.mv_recovery_mbs", recovered)
        return result
