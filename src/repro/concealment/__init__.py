"""Error concealment: decoder-side repair of lost macroblocks.

The paper assumes "a simple copy scheme ... for error concealment at
the decoding side" and notes other schemes slot in by changing the
similarity factor.  This package provides that copy scheme plus a
spatial-interpolation scheme as an extension, behind one interface.
"""

from repro.concealment.base import ConcealmentStrategy
from repro.concealment.copy import CopyConcealment
from repro.concealment.motion import MotionRecoveryConcealment
from repro.concealment.spatial import SpatialConcealment

__all__ = [
    "ConcealmentStrategy",
    "CopyConcealment",
    "MotionRecoveryConcealment",
    "SpatialConcealment",
]
