"""The concealment interface.

The decoder leaves lost macroblocks holding a copy of the reference
frame and reports which macroblocks were received; a concealment
strategy then repairs the lost ones in place.  Keeping this stage
separate mirrors the paper, where the encoder's similarity factor is
parameterized by whichever concealment the decoder uses.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np


class ConcealmentStrategy(abc.ABC):
    """Repairs lost macroblocks of a decoded frame."""

    name: str = "base"

    @abc.abstractmethod
    def conceal(
        self,
        frame: np.ndarray,
        received: np.ndarray,
        reference: Optional[np.ndarray],
        mvs_pixels: Optional[np.ndarray] = None,
        modes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Return the frame with lost macroblocks repaired.

        Args:
            frame: decoded luma; lost macroblocks hold the decoder's
                seed content (reference copy or mid-grey).
            received: ``(mb_rows, mb_cols)`` bool mask of macroblocks
                that decoded successfully.
            reference: previous decoder-side frame, or None at start.
            mvs_pixels: optional decoded motion field in pixel units
                (zeros at intra/lost macroblocks) — motion-aware
                strategies use it, others may ignore it.
            modes: optional per-macroblock decoded modes.
        """
