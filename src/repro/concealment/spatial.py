"""Spatial-interpolation concealment (extension).

Estimates each lost macroblock from the received macroblocks around it
— "making use of inherent correlation among spatially ... adjacent
samples" per the paper's survey citation.  Each lost macroblock becomes
a bilinear blend of its nearest received neighbours in the four
cardinal directions, falling back to copy concealment when it is fully
surrounded by losses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.concealment.base import ConcealmentStrategy
from repro.concealment.copy import CopyConcealment
from repro.obs import get_tracer


class SpatialConcealment(ConcealmentStrategy):
    """Bilinear interpolation from received neighbour macroblocks."""

    name = "spatial"

    def __init__(self) -> None:
        self._fallback = CopyConcealment()

    def conceal(
        self,
        frame: np.ndarray,
        received: np.ndarray,
        reference: Optional[np.ndarray],
        mvs_pixels: Optional[np.ndarray] = None,
        modes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        result = self._fallback.conceal(frame, received, reference)
        mb_rows, mb_cols = received.shape
        lost_rows, lost_cols = np.nonzero(~received)
        if lost_rows.size:
            get_tracer().metrics.inc(
                "conceal.spatial_mbs", int(lost_rows.size)
            )
        for row, col in zip(lost_rows, lost_cols):
            patches = []
            weights = []
            for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                nr, nc = row + dr, col + dc
                if 0 <= nr < mb_rows and 0 <= nc < mb_cols and received[nr, nc]:
                    y, x = nr * 16, nc * 16
                    patches.append(
                        result[y : y + 16, x : x + 16].astype(np.float64)
                    )
                    weights.append(1.0)
            if not patches:
                continue  # keep the copy fallback
            blended = np.average(np.stack(patches), axis=0, weights=weights)
            y, x = row * 16, col * 16
            result[y : y + 16, x : x + 16] = np.clip(blended, 0, 255).astype(
                np.uint8
            )
        return result
