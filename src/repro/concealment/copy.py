"""Copy-from-previous concealment — the paper's scheme."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.concealment.base import ConcealmentStrategy
from repro.obs import get_tracer


class CopyConcealment(ConcealmentStrategy):
    """Replace each lost macroblock with its colocated predecessor.

    The decoder already seeds lost macroblocks from the reference frame,
    so this strategy only needs to handle the no-reference case (repair
    to mid-grey is the best it can do) and otherwise verify the seed.
    """

    name = "copy"

    def conceal(
        self,
        frame: np.ndarray,
        received: np.ndarray,
        reference: Optional[np.ndarray],
        mvs_pixels: Optional[np.ndarray] = None,
        modes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        result = frame.copy()
        lost_rows, lost_cols = np.nonzero(~received)
        if lost_rows.size:
            tracer = get_tracer()
            tracer.count(concealed_mbs=int(lost_rows.size))
            tracer.metrics.inc("conceal.copy_mbs", int(lost_rows.size))
        for row, col in zip(lost_rows, lost_cols):
            y, x = row * 16, col * 16
            if reference is not None:
                result[y : y + 16, x : x + 16] = reference[y : y + 16, x : x + 16]
            else:
                result[y : y + 16, x : x + 16] = 128
        return result
