"""Stable public facade of the reproduction toolkit.

This module is the **stability boundary** of the package: scripts,
notebooks and downstream tooling should import from ``repro.api`` (or
the aliases re-exported in :mod:`repro` itself), not from the internal
submodules.  Everything in ``__all__`` here keeps its name and call
signature across minor versions; internal modules
(``repro.sim.pipeline``, ``repro.codec.*``, ...) may be refactored
freely underneath it.

Two kinds of names live here:

* **Functions** — thin wrappers over the experiment harness whose
  option arguments are *keyword-only*, so call sites stay readable and
  adding options never breaks positional callers::

      from repro import api

      video = api.make_sequence("foreman", n_frames=60)
      strategy = api.make_strategy("PBPAIR", intra_th=0.35, plr=0.1)
      result = api.simulate(video, strategy=strategy, plr=0.1)

* **Types** — the dataclasses those functions accept and return
  (:class:`SimulationConfig`, :class:`ExperimentSpec`, ...), re-exported
  unchanged.

The codec itself is part of the facade: :func:`encode_sequence` and
:func:`decode_stream` cover the common encode/decode round trip with
keyword-only options, and the :class:`Frame`/:class:`VideoSequence`/
:class:`EncodedFrame`/:class:`DecodeResult` types travel with them::

    encoded = api.encode_sequence(video, strategy="PGOP-3")
    decoded = api.decode_stream(encoded)          # lossless round trip

Lower-level classes (:class:`Encoder`, :class:`Decoder`,
:class:`Packetizer`, loss models, the energy model, ...) are
re-exported for scripts that drive the pieces directly; their names
here are stable even when the implementing module moves.

Observability rides along: :class:`Tracer`, :func:`use_tracer`,
:func:`write_trace`, :func:`load_trace` and :func:`trace_summary` are
part of the facade so traced runs do not need internal imports either.

The streaming session service is part of the facade too:
:class:`RunnerOptions` bundles the execution knobs shared by the batch
verbs and the daemon, the wire types (:class:`JobSubmit`,
:class:`JobStatus`, :class:`SessionResult`, :class:`FleetSummary`,
:class:`ServiceManifest`) are the schema-versioned job API, and
:class:`ServiceClient`/:class:`ServiceConfig`/:func:`start_daemon`
drive a daemon end to end::

    from repro import api

    config = api.ServiceConfig(queue_dir="fleet", port=0)
    with api.start_daemon(config) as daemon:
        client = api.ServiceClient(daemon.url)
        ids = client.submit([api.JobSubmit(spec=spec) for spec in specs])
        client.wait(ids)
        summary = client.summary()
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

from repro.codec.dct import forward_dct_blocks, inverse_dct_blocks
from repro.codec.decoder import Decoder, DecodeResult
from repro.codec.encoder import Encoder
from repro.codec.motion import (
    DiamondSearchMotionEstimator,
    MotionField,
    ThreeStepMotionEstimator,
    build_motion_estimator,
    candidate_sads,
)
from repro.codec.quant import dequantize_blocks, quantize_blocks
from repro.codec.rate import (
    AnyRateController,
    ClosedLoopRateController,
    RateControlConfig,
    RateController,
    build_rate_controller,
)
from repro.codec.reference import (
    dequantize_scalar,
    diamond_search_scalar,
    forward_dct_scalar,
    inverse_dct_scalar,
    quantize_scalar,
    three_step_search_scalar,
)
from repro.codec.types import (
    CodecConfig,
    EncodedFrame,
    FrameType,
    MacroblockMode,
)
from repro.concealment import (
    CopyConcealment,
    MotionRecoveryConcealment,
    SpatialConcealment,
)
from repro.concealment.base import ConcealmentStrategy
from repro.core.adaptation import (
    EnergyBudgetController,
    intra_th_for_plr_change,
)
from repro.core.correctness import min_sigma_related, refresh_interval
from repro.core.instrumentation import (
    InstrumentedPBPAIRStrategy,
    sigma_heatmap,
)
from repro.core.pbpair import PBPAIRConfig
from repro.energy.model import EnergyModel, OperationCounters
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    inject_faults,
    load_fault_plan,
    parse_fault_plan,
    write_fault_plan,
)
from repro.energy.profiles import DEVICE_PROFILES, IPAQ_H5555, ZAURUS_SL5600
from repro.metrics.bitrate import frame_size_stats
from repro.network.biterror import BitErrorChannel
from repro.network.channel import Channel
from repro.network.link import BandwidthDeadlineLoss
from repro.network.loss import (
    GilbertElliottLoss,
    LossModel,
    MarkovBurstLoss,
    NoLoss,
    ScriptedLoss,
    TraceLoss,
    UniformLoss,
    structural_rng,
)
from repro.network.packet import Depacketizer, Packetizer
from repro.network.protection import ResilienceWrapper, xor_parity_payload
from repro.obs import (
    MetricsRegistry,
    TraceData,
    Tracer,
    get_tracer,
    load_trace,
    set_tracer,
    trace_summary,
    use_tracer,
    write_trace,
)
from repro.resilience.base import ResilienceStrategy
from repro.resilience.pbpair_strategy import PBPAIRStrategy
from repro.resilience.registry import STRATEGY_BUILDERS, build_strategy
from repro.sim.experiment import (
    CalibrationResult,
    ExperimentResult,
    ExperimentSpec,
    RateMatchSpec,
    ReplicationSummary,
    calibrate_intra_th,
    match_intra_th_to_size,
    total_encoded_bytes,
)
from repro.sim.experiment import comparison_specs as _comparison_specs
from repro.sim.experiment import replicate as _replicate
from repro.sim.experiment import run_experiment as _run_experiment
from repro.sim.experiment import sweep as _sweep
from repro.sim.pipeline import (
    EncodedStream,
    FrameRecord,
    SimulationConfig,
    SimulationResult,
    StreamFrame,
    encode_phase,
    transmit_phase,
)
from repro.sim.pipeline import simulate as _simulate
from repro.sim.report import format_series, format_table
from repro.service import (
    ClaimLost,
    ClassSummary,
    DaemonHandle,
    EncodeDaemon,
    FleetSummary,
    JobQueue,
    JobStatus,
    JobSubmit,
    QueueFull,
    ServiceBusy,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceManifest,
    SessionResult,
    WireFormatError,
    job_spec_from_json,
    job_spec_to_json,
    load_service_manifest,
    percentile,
    serve,
    session_result_digest,
    start_daemon,
)
from repro.scenarios import (
    FLEET_COLUMNS,
    FLEET_SCHEMES,
    LOSS_KINDS,
    RECOVERY_DIP_DB,
    SCENARIO_SCHEMA_VERSION,
    FleetCell,
    FleetReport,
    LossSpec,
    ResilienceSpec,
    ScenarioChannel,
    ScenarioFormatError,
    ScenarioPack,
    ScenarioSegment,
    available_packs,
    build_cell,
    fleet_jobs,
    load_pack,
    parse_scenario,
    recovery_summary,
    run_fleet,
    segment_seed,
    write_pack,
)
from repro.sim.runner import (
    EncodedStreamCache,
    GridManifest,
    JobFailure,
    JobResult,
    JobSpec,
    ManifestEntry,
    ResultCache,
    RetryPolicy,
    RunnerOptions,
    build_grid,
    encode_content_hash,
    encode_stream_key,
    grid_manifest,
    load_manifest,
    run_grid,
)
from repro.video.frame import Frame, VideoSequence
from repro.video.io import write_ppm
from repro.video.synthetic import (
    SEQUENCE_GENERATORS,
    SyntheticConfig,
    akiyo_like,
    foreman_like,
    garden_like,
    generate_sequence,
)


def simulate(
    sequence: VideoSequence,
    *,
    strategy: ResilienceStrategy,
    loss_model: Optional[LossModel] = None,
    plr: Optional[float] = None,
    seed: int = 1,
    config: Optional[SimulationConfig] = None,
    concealment: Optional[ConcealmentStrategy] = None,
    rate_controller: Optional[AnyRateController] = None,
    bit_errors: Optional[BitErrorChannel] = None,
    faults: Optional[FaultPlan] = None,
) -> SimulationResult:
    """Run one scheme over one sequence and a lossy channel.

    Pass either a ``loss_model`` or a ``plr`` (which builds a
    :class:`~repro.network.loss.UniformLoss` with ``seed``); passing
    both is an error, passing neither simulates a loss-free channel.
    ``concealment`` overrides the decoder-side concealment strategy
    (copy concealment by default); ``rate_controller`` and
    ``bit_errors`` enable frame-level QP control and post-delivery bit
    corruption, as in the internal pipeline.  ``faults`` injects a
    deterministic :class:`FaultPlan` (packet truncation, reordering,
    fragment corruption, ...); every injection is recorded in the
    result's ``fault_events``.
    """
    if loss_model is not None and plr is not None:
        raise ValueError("pass loss_model or plr, not both")
    if loss_model is None and plr is not None:
        loss_model = UniformLoss(plr=plr, seed=seed)
    return _simulate(
        sequence,
        strategy,
        loss_model=loss_model,
        config=config,
        concealment=concealment,
        rate_controller=rate_controller,
        bit_errors=bit_errors,
        faults=faults,
    )


def run_experiment(
    sequence: VideoSequence,
    *,
    spec: ExperimentSpec,
    config: Optional[SimulationConfig] = None,
) -> ExperimentResult:
    """Run one labelled :class:`ExperimentSpec` against one sequence."""
    return _run_experiment(sequence, spec, config=config)


def sweep(
    sequence: VideoSequence,
    *,
    specs: Iterable[ExperimentSpec],
    config: Optional[SimulationConfig] = None,
    max_workers: Optional[int] = 1,
) -> list[ExperimentResult]:
    """Run several specs against one sequence, preserving order."""
    return _sweep(sequence, specs, config=config, max_workers=max_workers)


def replicate(
    sequence: VideoSequence,
    *,
    strategy_factory: Callable[[], ResilienceStrategy],
    loss_factory: Callable[[int], LossModel],
    metric: Callable[[SimulationResult], float],
    seeds: Sequence[int],
    label: str = "run",
    config: Optional[SimulationConfig] = None,
    max_workers: Optional[int] = 1,
) -> ReplicationSummary:
    """Run the same experiment over several channel seeds."""
    return _replicate(
        sequence,
        strategy_factory,
        loss_factory,
        metric,
        seeds,
        label=label,
        config=config,
        max_workers=max_workers,
    )


def comparison_specs(
    scheme_specs: Sequence[str],
    *,
    loss_factory: Optional[Callable[[], LossModel]] = None,
    pbpair_kwargs: Optional[dict] = None,
) -> list[ExperimentSpec]:
    """Build the paper's figure legends ("NO", "PBPAIR", "PGOP-3", ...)."""
    return _comparison_specs(
        scheme_specs, loss_factory=loss_factory, pbpair_kwargs=pbpair_kwargs
    )


def make_strategy(spec: str, **kwargs) -> ResilienceStrategy:
    """Build a resilience strategy from its spec string.

    Spec strings are the scheme names the paper compares: ``"NO"``,
    ``"GOP-3"``, ``"AIR-24"``, ``"PGOP-3"``, ``"PBPAIR"``.  Keyword
    arguments configure PBPAIR (``intra_th``, ``plr``, ...); see
    :data:`repro.resilience.registry.STRATEGY_BUILDERS` for the set of
    recognised prefixes.
    """
    return build_strategy(spec, **kwargs)


def encode_sequence(
    sequence: Iterable[Frame],
    *,
    strategy: Union[str, ResilienceStrategy] = "NO",
    config: Optional[CodecConfig] = None,
) -> list[EncodedFrame]:
    """Encode a sequence of frames; no channel is involved.

    ``strategy`` is either a scheme spec string (``"NO"``, ``"GOP-3"``,
    ``"PBPAIR"``, ...) or an already-built
    :class:`~repro.resilience.base.ResilienceStrategy`.  Returns one
    :class:`EncodedFrame` per input frame, each carrying the exact
    bitstream payload plus encoder-side metadata.
    """
    if isinstance(strategy, str):
        strategy = build_strategy(strategy)
    encoder = Encoder(config or CodecConfig(), strategy)
    return encoder.encode_sequence(sequence)


def decode_stream(
    frames: Iterable[Union[EncodedFrame, Sequence[bytes]]],
    *,
    config: Optional[CodecConfig] = None,
) -> list[DecodeResult]:
    """Decode a stream of frames in display order.

    Each item is either an :class:`EncodedFrame` (decoded losslessly —
    it is packetized internally and every fragment is delivered) or a
    list of surviving fragment payloads for one frame, as produced by
    :class:`Packetizer` after channel loss.  The decoder's prediction
    loop is chained across frames exactly as in the simulation
    pipeline; lost macroblocks hold the concealment seed.
    """
    config = config or CodecConfig()
    packetizer = Packetizer(config)
    decoder = Decoder(config)
    results: list[DecodeResult] = []
    reference = None
    reference_chroma = None
    for index, item in enumerate(frames):
        if isinstance(item, EncodedFrame):
            fragments = [p.payload for p in packetizer.packetize(item)]
            index = item.frame_index
        else:
            fragments = list(item)
        result = decoder.decode_frame(
            fragments,
            reference,
            expected_index=index,
            reference_chroma=reference_chroma,
        )
        results.append(result)
        reference = result.frame
        reference_chroma = result.chroma
    return results


def make_sequence(name: str, *, n_frames: int = 90) -> VideoSequence:
    """Build one of the bundled synthetic test clips by name."""
    try:
        generator = SEQUENCE_GENERATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown sequence {name!r}; "
            f"choose from {', '.join(sorted(SEQUENCE_GENERATORS))}"
        ) from None
    return generator(n_frames)


__all__ = [
    # harness functions (keyword-only options)
    "simulate",
    "run_experiment",
    "sweep",
    "replicate",
    "comparison_specs",
    "make_strategy",
    "make_sequence",
    "match_intra_th_to_size",
    "calibrate_intra_th",
    "total_encoded_bytes",
    # matched-bitrate comparison and closed-loop rate control
    "RateMatchSpec",
    "RateControlConfig",
    "ClosedLoopRateController",
    "build_rate_controller",
    # phase-split pipeline (encode once, replay many channels)
    "encode_phase",
    "transmit_phase",
    "EncodedStream",
    "StreamFrame",
    "CalibrationResult",
    "encode_content_hash",
    "encode_stream_key",
    # codec entry points (keyword-only options)
    "encode_sequence",
    "decode_stream",
    # codec types and classes
    "CodecConfig",
    "Frame",
    "VideoSequence",
    "EncodedFrame",
    "DecodeResult",
    "FrameType",
    "MacroblockMode",
    "Encoder",
    "Decoder",
    "RateController",
    # batched block kernels and their scalar reference oracles
    "forward_dct_blocks",
    "inverse_dct_blocks",
    "quantize_blocks",
    "dequantize_blocks",
    "candidate_sads",
    "MotionField",
    "DiamondSearchMotionEstimator",
    "ThreeStepMotionEstimator",
    "build_motion_estimator",
    "forward_dct_scalar",
    "inverse_dct_scalar",
    "quantize_scalar",
    "dequantize_scalar",
    "diamond_search_scalar",
    "three_step_search_scalar",
    # harness types
    "SimulationConfig",
    "SimulationResult",
    "FrameRecord",
    "ExperimentSpec",
    "ExperimentResult",
    "ReplicationSummary",
    # network: packetization, channels and loss models
    "Packetizer",
    "Depacketizer",
    "Channel",
    "LossModel",
    "NoLoss",
    "UniformLoss",
    "ScriptedLoss",
    "TraceLoss",
    "GilbertElliottLoss",
    "MarkovBurstLoss",
    "BandwidthDeadlineLoss",
    "BitErrorChannel",
    "ResilienceWrapper",
    "xor_parity_payload",
    "structural_rng",
    # scenario packs and the fleet sweep
    "SCENARIO_SCHEMA_VERSION",
    "LOSS_KINDS",
    "ScenarioPack",
    "ScenarioSegment",
    "LossSpec",
    "ResilienceSpec",
    "ScenarioFormatError",
    "ScenarioChannel",
    "segment_seed",
    "available_packs",
    "load_pack",
    "parse_scenario",
    "write_pack",
    "run_fleet",
    "fleet_jobs",
    "build_cell",
    "recovery_summary",
    "FleetCell",
    "FleetReport",
    "FLEET_SCHEMES",
    "FLEET_COLUMNS",
    "RECOVERY_DIP_DB",
    # resilience strategies
    "ResilienceStrategy",
    "STRATEGY_BUILDERS",
    "PBPAIRStrategy",
    "PBPAIRConfig",
    "InstrumentedPBPAIRStrategy",
    "sigma_heatmap",
    "refresh_interval",
    "min_sigma_related",
    # concealment
    "ConcealmentStrategy",
    "CopyConcealment",
    "MotionRecoveryConcealment",
    "SpatialConcealment",
    # encoder-side adaptation controllers
    "EnergyBudgetController",
    "intra_th_for_plr_change",
    # energy model and device profiles
    "EnergyModel",
    "OperationCounters",
    "DEVICE_PROFILES",
    "IPAQ_H5555",
    "ZAURUS_SL5600",
    # parallel experiment runner
    "JobSpec",
    "JobResult",
    "JobFailure",
    "ResultCache",
    "EncodedStreamCache",
    "RetryPolicy",
    "RunnerOptions",
    "build_grid",
    "run_grid",
    "GridManifest",
    "ManifestEntry",
    "grid_manifest",
    "load_manifest",
    # streaming session service (daemon + versioned job API)
    "JobSubmit",
    "JobStatus",
    "SessionResult",
    "ClassSummary",
    "FleetSummary",
    "ServiceManifest",
    "ServiceConfig",
    "ServiceClient",
    "ServiceClientError",
    "ServiceBusy",
    "EncodeDaemon",
    "DaemonHandle",
    "JobQueue",
    "QueueFull",
    "ClaimLost",
    "WireFormatError",
    "serve",
    "start_daemon",
    "job_spec_to_json",
    "job_spec_from_json",
    "session_result_digest",
    "load_service_manifest",
    "percentile",
    # fault injection
    "FaultPlan",
    "FaultSpec",
    "FaultEvent",
    "FaultInjector",
    "inject_faults",
    "parse_fault_plan",
    "load_fault_plan",
    "write_fault_plan",
    # video sources and IO
    "SyntheticConfig",
    "generate_sequence",
    "SEQUENCE_GENERATORS",
    "foreman_like",
    "akiyo_like",
    "garden_like",
    "write_ppm",
    # metrics and reporting
    "frame_size_stats",
    "format_table",
    "format_series",
    # observability
    "Tracer",
    "TraceData",
    "MetricsRegistry",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "write_trace",
    "load_trace",
    "trace_summary",
]
