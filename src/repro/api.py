"""Stable public facade of the reproduction toolkit.

This module is the **stability boundary** of the package: scripts,
notebooks and downstream tooling should import from ``repro.api`` (or
the aliases re-exported in :mod:`repro` itself), not from the internal
submodules.  Everything in ``__all__`` here keeps its name and call
signature across minor versions; internal modules
(``repro.sim.pipeline``, ``repro.codec.*``, ...) may be refactored
freely underneath it.

Two kinds of names live here:

* **Functions** — thin wrappers over the experiment harness whose
  option arguments are *keyword-only*, so call sites stay readable and
  adding options never breaks positional callers::

      from repro import api

      video = api.make_sequence("foreman", n_frames=60)
      strategy = api.make_strategy("PBPAIR", intra_th=0.35, plr=0.1)
      result = api.simulate(video, strategy=strategy, plr=0.1)

* **Types** — the dataclasses those functions accept and return
  (:class:`SimulationConfig`, :class:`ExperimentSpec`, ...), re-exported
  unchanged.

Observability rides along: :class:`Tracer`, :func:`use_tracer`,
:func:`write_trace`, :func:`load_trace` and :func:`trace_summary` are
part of the facade so traced runs do not need internal imports either.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.network.loss import LossModel, UniformLoss
from repro.obs import (
    MetricsRegistry,
    TraceData,
    Tracer,
    get_tracer,
    load_trace,
    set_tracer,
    trace_summary,
    use_tracer,
    write_trace,
)
from repro.resilience.base import ResilienceStrategy
from repro.resilience.registry import STRATEGY_BUILDERS, build_strategy
from repro.sim.experiment import (
    ExperimentResult,
    ExperimentSpec,
    ReplicationSummary,
    match_intra_th_to_size,
)
from repro.sim.experiment import comparison_specs as _comparison_specs
from repro.sim.experiment import replicate as _replicate
from repro.sim.experiment import run_experiment as _run_experiment
from repro.sim.experiment import sweep as _sweep
from repro.sim.pipeline import (
    FrameRecord,
    SimulationConfig,
    SimulationResult,
)
from repro.sim.pipeline import simulate as _simulate
from repro.video.frame import VideoSequence
from repro.video.synthetic import SEQUENCE_GENERATORS


def simulate(
    sequence: VideoSequence,
    *,
    strategy: ResilienceStrategy,
    loss_model: Optional[LossModel] = None,
    plr: Optional[float] = None,
    seed: int = 1,
    config: Optional[SimulationConfig] = None,
) -> SimulationResult:
    """Run one scheme over one sequence and a lossy channel.

    Pass either a ``loss_model`` or a ``plr`` (which builds a
    :class:`~repro.network.loss.UniformLoss` with ``seed``); passing
    both is an error, passing neither simulates a loss-free channel.
    """
    if loss_model is not None and plr is not None:
        raise ValueError("pass loss_model or plr, not both")
    if loss_model is None and plr is not None:
        loss_model = UniformLoss(plr=plr, seed=seed)
    return _simulate(sequence, strategy, loss_model=loss_model, config=config)


def run_experiment(
    sequence: VideoSequence,
    *,
    spec: ExperimentSpec,
    config: Optional[SimulationConfig] = None,
) -> ExperimentResult:
    """Run one labelled :class:`ExperimentSpec` against one sequence."""
    return _run_experiment(sequence, spec, config=config)


def sweep(
    sequence: VideoSequence,
    *,
    specs: Iterable[ExperimentSpec],
    config: Optional[SimulationConfig] = None,
    max_workers: Optional[int] = 1,
) -> list[ExperimentResult]:
    """Run several specs against one sequence, preserving order."""
    return _sweep(sequence, specs, config=config, max_workers=max_workers)


def replicate(
    sequence: VideoSequence,
    *,
    strategy_factory: Callable[[], ResilienceStrategy],
    loss_factory: Callable[[int], LossModel],
    metric: Callable[[SimulationResult], float],
    seeds: Sequence[int],
    label: str = "run",
    config: Optional[SimulationConfig] = None,
    max_workers: Optional[int] = 1,
) -> ReplicationSummary:
    """Run the same experiment over several channel seeds."""
    return _replicate(
        sequence,
        strategy_factory,
        loss_factory,
        metric,
        seeds,
        label=label,
        config=config,
        max_workers=max_workers,
    )


def comparison_specs(
    scheme_specs: Sequence[str],
    *,
    loss_factory: Optional[Callable[[], LossModel]] = None,
    pbpair_kwargs: Optional[dict] = None,
) -> list[ExperimentSpec]:
    """Build the paper's figure legends ("NO", "PBPAIR", "PGOP-3", ...)."""
    return _comparison_specs(
        scheme_specs, loss_factory=loss_factory, pbpair_kwargs=pbpair_kwargs
    )


def make_strategy(spec: str, **kwargs) -> ResilienceStrategy:
    """Build a resilience strategy from its spec string.

    Spec strings are the scheme names the paper compares: ``"NO"``,
    ``"GOP-3"``, ``"AIR-24"``, ``"PGOP-3"``, ``"PBPAIR"``.  Keyword
    arguments configure PBPAIR (``intra_th``, ``plr``, ...); see
    :data:`repro.resilience.registry.STRATEGY_BUILDERS` for the set of
    recognised prefixes.
    """
    return build_strategy(spec, **kwargs)


def make_sequence(name: str, *, n_frames: int = 90) -> VideoSequence:
    """Build one of the bundled synthetic test clips by name."""
    try:
        generator = SEQUENCE_GENERATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown sequence {name!r}; "
            f"choose from {', '.join(sorted(SEQUENCE_GENERATORS))}"
        ) from None
    return generator(n_frames)


__all__ = [
    # harness functions (keyword-only options)
    "simulate",
    "run_experiment",
    "sweep",
    "replicate",
    "comparison_specs",
    "make_strategy",
    "make_sequence",
    "match_intra_th_to_size",
    # types those functions accept / return
    "SimulationConfig",
    "SimulationResult",
    "FrameRecord",
    "ExperimentSpec",
    "ExperimentResult",
    "ReplicationSummary",
    # observability
    "Tracer",
    "TraceData",
    "MetricsRegistry",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "write_trace",
    "load_trace",
    "trace_summary",
]
