"""The lossy channel: applies a loss model to a packet stream."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.loss import LossModel
from repro.network.packet import Packet
from repro.obs import get_tracer


@dataclass
class ChannelLog:
    """What happened on the wire, for reporting.

    Attributes:
        sent: data packets offered to the channel.
        delivered: data packets that survived (including recoveries).
        lost_packets: sequence numbers of dropped data packets.
        lost_frames: frame indices that lost at least one packet.
        bytes_sent / bytes_delivered: transport-level byte counts
            (``bytes_sent`` includes parity and retransmission
            overhead when a resilience wrapper is active).
        fec_parity_sent: XOR-parity packets injected by FEC.
        fec_recovered: data packets reconstructed from parity.
        retransmissions: retry transmissions attempted.
        deadline_drops: packets abandoned with the retry budget spent.
    """

    sent: int = 0
    delivered: int = 0
    lost_packets: list[int] = field(default_factory=list)
    lost_frames: set[int] = field(default_factory=set)
    bytes_sent: int = 0
    bytes_delivered: int = 0
    fec_parity_sent: int = 0
    fec_recovered: int = 0
    retransmissions: int = 0
    deadline_drops: int = 0

    @property
    def loss_rate(self) -> float:
        return 1.0 - self.delivered / self.sent if self.sent else 0.0


class Channel:
    """Pushes packets through a :class:`LossModel` and logs the outcome."""

    def __init__(self, loss_model: LossModel) -> None:
        self.loss_model = loss_model
        self.log = ChannelLog()

    def reset(self) -> None:
        self.loss_model.reset()
        self.log = ChannelLog()

    def transmit(self, packets: list[Packet]) -> list[Packet]:
        """Return the packets that survive, preserving order."""
        survivors = []
        for packet in packets:
            self.log.sent += 1
            self.log.bytes_sent += packet.size_bytes
            if self.loss_model.survives(packet):
                survivors.append(packet)
                self.log.delivered += 1
                self.log.bytes_delivered += packet.size_bytes
            else:
                self.log.lost_packets.append(packet.sequence_number)
                self.log.lost_frames.add(packet.frame_index)
        lost = len(packets) - len(survivors)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count(packets_sent=len(packets), packets_lost=lost)
            tracer.metrics.inc("channel.packets_sent", len(packets))
            tracer.metrics.inc("channel.packets_lost", lost)
        return survivors
