"""Network substrate: RTP-like packetization and lossy channels.

Implements the transmission path of the paper's Figure 1: encoded
frames are packetized (one packet per frame up to the MTU, fragmented at
macroblock boundaries beyond it — the paper's RTP setup), pushed through
a loss model, and depacketized into per-frame fragment sets for the
decoder.

Loss models: :class:`UniformLoss` (the paper's "uniform distribution of
frame discard"), :class:`ScriptedLoss` (the deterministic e1..e7 events
of Figure 6), and :class:`GilbertElliottLoss` (bursty wireless loss, an
extension).
"""

from repro.network.packet import Packet, Packetizer, Depacketizer, DEFAULT_MTU
from repro.network.loss import (
    LossModel,
    NoLoss,
    UniformLoss,
    ScriptedLoss,
    TraceLoss,
    GilbertElliottLoss,
    MarkovBurstLoss,
    structural_rng,
)
from repro.network.channel import Channel, ChannelLog
from repro.network.biterror import BitErrorChannel, PROTECTED_HEADER_BYTES
from repro.network.link import BandwidthDeadlineLoss, LinkLog
from repro.network.protection import ResilienceWrapper, xor_parity_payload

__all__ = [
    "Packet",
    "Packetizer",
    "Depacketizer",
    "DEFAULT_MTU",
    "LossModel",
    "NoLoss",
    "UniformLoss",
    "ScriptedLoss",
    "TraceLoss",
    "GilbertElliottLoss",
    "MarkovBurstLoss",
    "structural_rng",
    "Channel",
    "ChannelLog",
    "BitErrorChannel",
    "PROTECTED_HEADER_BYTES",
    "BandwidthDeadlineLoss",
    "LinkLog",
    "ResilienceWrapper",
    "xor_parity_payload",
]
