"""Packet loss models.

The paper generates its loss pattern from "a uniform distribution of
frame discard" and, in Figure 6, studies specific loss events e1..e7.
:class:`UniformLoss` and :class:`ScriptedLoss` implement exactly those;
:class:`GilbertElliottLoss` adds the classic two-state burst model for
wireless channels (an extension the paper's future work gestures at).

:class:`UniformLoss` defaults to frame granularity (the paper's
simplification "we use the frame loss rate to denote the network packet
loss rate"): all fragments of a dropped frame vanish together.  Packet
granularity is available for channel studies, and
:class:`GilbertElliottLoss` is inherently per-packet.
"""

from __future__ import annotations

import abc
from typing import Iterable, Optional

import numpy as np

from repro.network.packet import Packet


class LossModel(abc.ABC):
    """Decides the fate of each packet."""

    @abc.abstractmethod
    def survives(self, packet: Packet) -> bool:
        """True when the packet is delivered."""

    def reset(self) -> None:
        """Restart the model's random/state sequence."""


class NoLoss(LossModel):
    """The ideal channel."""

    def survives(self, packet: Packet) -> bool:
        return True


class UniformLoss(LossModel):
    """I.i.d. drop with probability ``plr`` — the paper's model.

    The paper "use[s] a uniform distribution of frame discard" and
    equates frame loss rate with packet loss rate, so the default
    granularity is ``"frame"``: a dropped frame loses *all* its
    packets, and the loss probability is independent of how many
    packets a frame spans (schemes with larger frames are not
    penalized twice).  ``granularity="packet"`` gives the classic
    per-packet i.i.d. channel instead.
    """

    def __init__(
        self,
        plr: float,
        seed: int = 0,
        protect_first_frame: bool = True,
        granularity: str = "frame",
    ):
        """Args:
        plr: loss rate in [0, 1].
        seed: RNG seed; runs are reproducible.
        protect_first_frame: never drop frame 0 (the paper starts
            "from an error free image frame"; losing the very first
            intra frame would leave the decoder with no content at
            all, which no scheme can recover from).
        granularity: ``"frame"`` (paper) or ``"packet"``.
        """
        if not 0.0 <= plr <= 1.0:
            raise ValueError(f"PLR must be in [0, 1], got {plr}")
        if granularity not in ("frame", "packet"):
            raise ValueError(
                f"granularity must be 'frame' or 'packet', got {granularity!r}"
            )
        self.plr = plr
        self.seed = seed
        self.protect_first_frame = protect_first_frame
        self.granularity = granularity
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def _frame_survives(self, frame_index: int) -> bool:
        # Deterministic per frame and independent of packet order: all
        # fragments of a frame share one fate.
        draw = np.random.default_rng((self.seed, frame_index)).random()
        return bool(draw >= self.plr)

    def survives(self, packet: Packet) -> bool:
        if self.protect_first_frame and packet.frame_index == 0:
            return True
        if self.granularity == "frame":
            return self._frame_survives(packet.frame_index)
        return bool(self._rng.random() >= self.plr)


class ScriptedLoss(LossModel):
    """Deterministic loss of specific frames (Figure 6's e1..e7 events).

    Every packet belonging to a listed frame index is dropped.
    """

    def __init__(self, lost_frames: Iterable[int]) -> None:
        self.lost_frames = frozenset(int(f) for f in lost_frames)
        if any(f < 0 for f in self.lost_frames):
            raise ValueError("frame indices must be >= 0")

    def survives(self, packet: Packet) -> bool:
        return packet.frame_index not in self.lost_frames


class TraceLoss(LossModel):
    """Loss pattern replayed from an explicit per-frame trace.

    ``trace[i]`` is True when frame ``i`` is delivered.  Frames beyond
    the trace use ``default_survives``.  Useful for replaying captured
    network traces or for exact A/B comparisons between schemes.
    """

    def __init__(self, trace, default_survives: bool = True) -> None:
        self.trace = tuple(bool(v) for v in trace)
        self.default_survives = default_survives

    @classmethod
    def from_loss_rate_pattern(cls, pattern: str) -> "TraceLoss":
        """Parse a compact string trace: '.' = delivered, 'x' = lost."""
        allowed = set(".x")
        if not pattern or set(pattern) - allowed:
            raise ValueError("pattern must be a non-empty string of '.' and 'x'")
        return cls(ch == "." for ch in pattern)

    def survives(self, packet: Packet) -> bool:
        if packet.frame_index < len(self.trace):
            return self.trace[packet.frame_index]
        return self.default_survives


class GilbertElliottLoss(LossModel):
    """Two-state Markov (good/bad) burst-loss model.

    In the good state packets drop with ``good_loss`` probability, in
    the bad state with ``bad_loss``; transitions happen per packet with
    ``p_good_to_bad`` / ``p_bad_to_good``.  The steady-state loss rate is
    ``pi_bad * bad_loss + pi_good * good_loss`` with
    ``pi_bad = p_gb / (p_gb + p_bg)``.
    """

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        good_loss: float = 0.0,
        bad_loss: float = 1.0,
        seed: int = 0,
        protect_first_frame: bool = True,
    ) -> None:
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("good_loss", good_loss),
            ("bad_loss", bad_loss),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.good_loss = good_loss
        self.bad_loss = bad_loss
        self.seed = seed
        self.protect_first_frame = protect_first_frame
        self._rng = np.random.default_rng(seed)
        self._in_bad_state = False

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._in_bad_state = False

    @property
    def steady_state_loss_rate(self) -> float:
        total = self.p_good_to_bad + self.p_bad_to_good
        if total == 0:
            return self.good_loss
        pi_bad = self.p_good_to_bad / total
        return pi_bad * self.bad_loss + (1 - pi_bad) * self.good_loss

    def survives(self, packet: Packet) -> bool:
        if self._in_bad_state:
            if self._rng.random() < self.p_bad_to_good:
                self._in_bad_state = False
        else:
            if self._rng.random() < self.p_good_to_bad:
                self._in_bad_state = True
        loss = self.bad_loss if self._in_bad_state else self.good_loss
        if self.protect_first_frame and packet.frame_index == 0:
            return True
        return bool(self._rng.random() >= loss)
