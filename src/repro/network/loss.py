"""Packet loss models.

The paper generates its loss pattern from "a uniform distribution of
frame discard" and, in Figure 6, studies specific loss events e1..e7.
:class:`UniformLoss` and :class:`ScriptedLoss` implement exactly those;
:class:`GilbertElliottLoss` adds the classic two-state burst model for
wireless channels (an extension the paper's future work gestures at).

:class:`UniformLoss` defaults to frame granularity (the paper's
simplification "we use the frame loss rate to denote the network packet
loss rate"): all fragments of a dropped frame vanish together.  Packet
granularity is available for channel studies, and
:class:`GilbertElliottLoss` is inherently per-packet.
"""

from __future__ import annotations

import abc
import hashlib
import json
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.network.packet import Packet


def structural_rng(seed: int, *key) -> np.random.Generator:
    """RNG keyed by *what* is being decided, not *when*.

    Same pattern as :meth:`repro.faults.FaultPlan.rng`: the seed and a
    structural key (frame index, draw counter, segment index, ...) are
    hashed into a generator, so a draw depends only on its identity —
    never on worker count, call order, or how many other draws happened
    first.  Models built on this replay exactly after ``reset()``.
    """
    material = json.dumps([seed, *key], separators=(",", ":"))
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "big"))


class LossModel(abc.ABC):
    """Decides the fate of each packet."""

    @abc.abstractmethod
    def survives(self, packet: Packet) -> bool:
        """True when the packet is delivered."""

    def reset(self) -> None:
        """Restart the model's random/state sequence."""


class NoLoss(LossModel):
    """The ideal channel."""

    def survives(self, packet: Packet) -> bool:
        return True


class UniformLoss(LossModel):
    """I.i.d. drop with probability ``plr`` — the paper's model.

    The paper "use[s] a uniform distribution of frame discard" and
    equates frame loss rate with packet loss rate, so the default
    granularity is ``"frame"``: a dropped frame loses *all* its
    packets, and the loss probability is independent of how many
    packets a frame spans (schemes with larger frames are not
    penalized twice).  ``granularity="packet"`` gives the classic
    per-packet i.i.d. channel instead.
    """

    def __init__(
        self,
        plr: float,
        seed: int = 0,
        protect_first_frame: bool = True,
        granularity: str = "frame",
    ):
        """Args:
        plr: loss rate in [0, 1].
        seed: RNG seed; runs are reproducible.
        protect_first_frame: never drop frame 0 (the paper starts
            "from an error free image frame"; losing the very first
            intra frame would leave the decoder with no content at
            all, which no scheme can recover from).
        granularity: ``"frame"`` (paper) or ``"packet"``.
        """
        if not 0.0 <= plr <= 1.0:
            raise ValueError(f"PLR must be in [0, 1], got {plr}")
        if granularity not in ("frame", "packet"):
            raise ValueError(
                f"granularity must be 'frame' or 'packet', got {granularity!r}"
            )
        self.plr = plr
        self.seed = seed
        self.protect_first_frame = protect_first_frame
        self.granularity = granularity
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def _frame_survives(self, frame_index: int) -> bool:
        # Deterministic per frame and independent of packet order: all
        # fragments of a frame share one fate.
        draw = np.random.default_rng((self.seed, frame_index)).random()
        return bool(draw >= self.plr)

    def survives(self, packet: Packet) -> bool:
        if self.protect_first_frame and packet.frame_index == 0:
            return True
        if self.granularity == "frame":
            return self._frame_survives(packet.frame_index)
        return bool(self._rng.random() >= self.plr)


class ScriptedLoss(LossModel):
    """Deterministic loss of specific frames (Figure 6's e1..e7 events).

    Every packet belonging to a listed frame index is dropped.
    """

    def __init__(self, lost_frames: Iterable[int]) -> None:
        self.lost_frames = frozenset(int(f) for f in lost_frames)
        if any(f < 0 for f in self.lost_frames):
            raise ValueError("frame indices must be >= 0")

    def survives(self, packet: Packet) -> bool:
        return packet.frame_index not in self.lost_frames


class TraceLoss(LossModel):
    """Loss pattern replayed from an explicit recorded/scripted trace.

    Two granularities:

    * ``"frame"`` (default): ``trace[i]`` is the fate of frame ``i`` —
      stateless, every fragment of a frame shares one fate, and the
      model is trivially order-independent.
    * ``"packet"``: the trace is consumed one entry per ``survives``
      call through an internal cursor, replaying a recorded per-packet
      fate sequence exactly.  ``reset()`` rewinds the cursor so a
      replay reproduces the identical sequence.

    Entries beyond the trace use ``default_survives``.  Useful for
    replaying captured network traces and for exact A/B comparisons
    between schemes over one channel realization.
    """

    def __init__(
        self,
        trace,
        default_survives: bool = True,
        granularity: str = "frame",
    ) -> None:
        if granularity not in ("frame", "packet"):
            raise ValueError(
                f"granularity must be 'frame' or 'packet', got {granularity!r}"
            )
        self.trace = tuple(bool(v) for v in trace)
        self.default_survives = default_survives
        self.granularity = granularity
        self._cursor = 0

    @classmethod
    def from_loss_rate_pattern(cls, pattern: str) -> "TraceLoss":
        """Parse a compact string trace: '.' = delivered, 'x' = lost."""
        allowed = set(".x")
        if not pattern or set(pattern) - allowed:
            raise ValueError("pattern must be a non-empty string of '.' and 'x'")
        return cls(ch == "." for ch in pattern)

    @classmethod
    def from_plr_series(
        cls, series: Sequence[float], seed: int = 0
    ) -> "TraceLoss":
        """Realize a scripted per-frame PLR time series into a trace.

        ``series[i]`` is frame ``i``'s loss probability; the fate of
        each frame is drawn from :func:`structural_rng` keyed by
        ``(seed, i)``, so the realized trace depends only on the series
        and the seed — never on evaluation order or worker count.
        """
        fates = []
        for index, plr in enumerate(series):
            plr = float(plr)
            if not 0.0 <= plr <= 1.0:
                raise ValueError(f"PLR must be in [0, 1], got {plr}")
            draw = structural_rng(seed, "plr-series", index).random()
            fates.append(bool(draw >= plr))
        return cls(fates)

    @classmethod
    def record(cls, model: LossModel, packets: Iterable[Packet]) -> "TraceLoss":
        """Capture another model's per-packet fates as a replayable trace.

        The returned model has ``granularity="packet"``; replaying the
        same packet stream through it reproduces ``model``'s decisions
        exactly, without re-running (or even having) the original model.
        """
        return cls(
            (model.survives(p) for p in packets), granularity="packet"
        )

    def reset(self) -> None:
        self._cursor = 0

    def survives(self, packet: Packet) -> bool:
        if self.granularity == "packet":
            index = self._cursor
            self._cursor += 1
        else:
            index = packet.frame_index
        if index < len(self.trace):
            return self.trace[index]
        return self.default_survives


class GilbertElliottLoss(LossModel):
    """Two-state Markov (good/bad) burst-loss model.

    In the good state packets drop with ``good_loss`` probability, in
    the bad state with ``bad_loss``; transitions happen per packet with
    ``p_good_to_bad`` / ``p_bad_to_good``.  The steady-state loss rate is
    ``pi_bad * bad_loss + pi_good * good_loss`` with
    ``pi_bad = p_gb / (p_gb + p_bg)``.
    """

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        good_loss: float = 0.0,
        bad_loss: float = 1.0,
        seed: int = 0,
        protect_first_frame: bool = True,
    ) -> None:
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("good_loss", good_loss),
            ("bad_loss", bad_loss),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.good_loss = good_loss
        self.bad_loss = bad_loss
        self.seed = seed
        self.protect_first_frame = protect_first_frame
        self._rng = np.random.default_rng(seed)
        self._in_bad_state = False

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._in_bad_state = False

    @property
    def steady_state_loss_rate(self) -> float:
        total = self.p_good_to_bad + self.p_bad_to_good
        if total == 0:
            return self.good_loss
        pi_bad = self.p_good_to_bad / total
        return pi_bad * self.bad_loss + (1 - pi_bad) * self.good_loss

    def survives(self, packet: Packet) -> bool:
        if self._in_bad_state:
            if self._rng.random() < self.p_bad_to_good:
                self._in_bad_state = False
        else:
            if self._rng.random() < self.p_good_to_bad:
                self._in_bad_state = True
        loss = self.bad_loss if self._in_bad_state else self.good_loss
        if self.protect_first_frame and packet.frame_index == 0:
            return True
        return bool(self._rng.random() >= loss)


class MarkovBurstLoss(LossModel):
    """k-state Markov burst-erasure channel.

    Generalizes Gilbert-Elliott toward the burst-erasure channels of
    the streaming-over-burst-loss literature: state 0 is *good* (the
    packet is delivered); states ``1..k`` are *burst* states (the
    packet is erased).  From good, a packet enters the burst (state 1)
    with probability ``p_enter``; from burst depth ``i`` it escapes to
    good with probability ``escape[i-1]``, otherwise the burst deepens
    to ``min(i + 1, k)``.  Decreasing escape probabilities model the
    heavy-tailed outages of fading links that a two-state chain cannot:
    the longer a burst has lasted, the less likely it ends.

    With ``k = 1`` this is exactly Gilbert-Elliott with
    ``good_loss=0, bad_loss=1``.

    Every transition draw comes from :func:`structural_rng` keyed by
    ``(seed, draw_index)``, so ``reset()`` replays the identical
    packet-fate sequence and results are independent of worker count.
    """

    def __init__(
        self,
        p_enter: float,
        escape: Sequence[float] | float,
        seed: int = 0,
        protect_first_frame: bool = True,
    ) -> None:
        if isinstance(escape, (int, float)):
            escape = (float(escape),)
        self.escape = tuple(float(e) for e in escape)
        if not self.escape:
            raise ValueError("escape needs at least one burst state")
        if not 0.0 <= p_enter <= 1.0:
            raise ValueError(f"p_enter must be in [0, 1], got {p_enter}")
        for e in self.escape:
            if not 0.0 < e <= 1.0:
                raise ValueError(
                    f"escape probabilities must be in (0, 1], got {e}"
                )
        self.p_enter = float(p_enter)
        self.seed = seed
        self.protect_first_frame = protect_first_frame
        self._state = 0
        self._draws = 0

    @property
    def burst_states(self) -> int:
        return len(self.escape)

    @property
    def expected_burst_length(self) -> float:
        """Mean packets erased per burst, from the chain geometry.

        Backwards recursion over burst depths: the deepest state is
        geometric (``E_k = 1/escape[k-1]``), and each shallower state
        adds its own packet plus the deeper tail it fails to escape:
        ``E_i = 1 + (1 - escape[i-1]) * E_{i+1}``.
        """
        expected = 1.0 / self.escape[-1]
        for e in reversed(self.escape[:-1]):
            expected = 1.0 + (1.0 - e) * expected
        return expected

    @property
    def steady_state_loss_rate(self) -> float:
        """Long-run erased fraction: E[burst] / (E[good] + E[burst])."""
        if self.p_enter == 0.0:
            return 0.0
        burst = self.expected_burst_length
        return burst / (1.0 / self.p_enter + burst)

    def reset(self) -> None:
        self._state = 0
        self._draws = 0

    def _draw(self) -> float:
        value = structural_rng(self.seed, "markov-burst", self._draws).random()
        self._draws += 1
        return float(value)

    def survives(self, packet: Packet) -> bool:
        if self._state == 0:
            if self._draw() < self.p_enter:
                self._state = 1
        else:
            if self._draw() < self.escape[self._state - 1]:
                self._state = 0
            else:
                self._state = min(self._state + 1, len(self.escape))
        if self.protect_first_frame and packet.frame_index == 0:
            return True
        return self._state == 0
