"""Channel-boundary resilience: XOR-parity FEC and bounded retransmission.

The paper's schemes fight loss at the *encoder* (intra refresh placement);
real mobile stacks also fight it at the *channel* with forward error
correction and ARQ.  :class:`ResilienceWrapper` adds both around any
:class:`~repro.network.loss.LossModel`, at the same boundary where
:class:`~repro.network.channel.Channel` sits, so scenario packs can
compare encoder-side and channel-side protection under one accounting
scheme (every parity packet and retry is billed to ``bytes_sent``).

Mechanics per transmitted frame:

* **FEC** (``fec_window >= 2``): data packets are grouped into windows
  of ``fec_window``; each window sends one XOR-parity packet.  A window
  that loses exactly one data packet while its parity survives is
  repaired by XOR-ing the parity with the survivors — the classic
  single-erasure property of a parity code.
* **Retransmission** (``retx_limit >= 1``): each data packet still lost
  after FEC is re-offered to the loss model up to ``retx_limit`` times;
  a packet that exhausts its budget is abandoned as a *deadline drop*
  (the playout deadline passes before another retry could land).

Both mechanisms only help against *independent* packet fates.  Under a
frame-granularity loss model every fragment of a frame shares one fate,
so neither a parity packet of that frame nor an immediate retry can
survive — pair the wrapper with packet-granularity models
(:class:`~repro.network.loss.MarkovBurstLoss`, packet-mode
:class:`~repro.network.loss.UniformLoss`), as the shipped scenario
packs do.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.network.channel import ChannelLog
from repro.network.loss import LossModel
from repro.network.packet import Packet
from repro.obs import get_tracer


def xor_parity_payload(packets: list[Packet]) -> bytes:
    """XOR of the window's payloads, padded to the longest one."""
    length = max(len(p.payload) for p in packets)
    buffer = np.zeros(length, dtype=np.uint8)
    for packet in packets:
        payload = np.frombuffer(packet.payload, dtype=np.uint8)
        buffer[: payload.size] ^= payload
    return buffer.tobytes()


class ResilienceWrapper:
    """FEC/retransmission protection around a loss model.

    Duck-types :class:`~repro.network.channel.Channel` — ``transmit``,
    ``log``, ``reset`` — so the simulation pipeline can use either
    interchangeably.  ``log`` counts only *data* packets in
    ``sent``/``delivered`` (keeping loss-rate numbers comparable with
    an unprotected channel) and bills parity/retry overhead to
    ``bytes_sent`` and the dedicated resilience counters.

    Args:
        loss_model: fate oracle for every transmission, including
            parity packets and retries (a retry is a fresh offer, so
            stateful models naturally advance between attempts).
        fec_window: data packets per XOR-parity window; 0 disables FEC.
        retx_limit: retries per lost packet; 0 disables retransmission.
        log: optional shared :class:`ChannelLog` — a multi-segment
            scenario channel passes one log to every segment's wrapper
            so the run's accounting stays in one place.
    """

    def __init__(
        self,
        loss_model: LossModel,
        *,
        fec_window: int = 0,
        retx_limit: int = 0,
        log: Optional[ChannelLog] = None,
    ) -> None:
        if fec_window < 0 or fec_window == 1:
            raise ValueError(
                f"fec_window must be 0 (off) or >= 2, got {fec_window}"
            )
        if retx_limit < 0:
            raise ValueError(f"retx_limit must be >= 0, got {retx_limit}")
        self.loss_model = loss_model
        self.fec_window = fec_window
        self.retx_limit = retx_limit
        self._owns_log = log is None
        self.log = ChannelLog() if log is None else log

    def reset(self) -> None:
        self.loss_model.reset()
        if self._owns_log:
            self.log = ChannelLog()

    def _parity_packet(self, window: list[Packet]) -> Packet:
        # Parity rides in the window's frame so frame-keyed loss models
        # see a consistent frame index; the sequence number is never
        # delivered (parity is internal to the wrapper).
        first = window[0]
        return Packet(
            sequence_number=-(first.sequence_number + 1),
            frame_index=first.frame_index,
            fragment_index=first.fragment_index,
            fragments_in_frame=first.fragments_in_frame,
            payload=xor_parity_payload(window),
        )

    def _apply_fec(self, packets: list[Packet], fates: list[bool]) -> None:
        for start in range(0, len(packets), self.fec_window):
            window = packets[start : start + self.fec_window]
            parity = self._parity_packet(window)
            parity_survives = self.loss_model.survives(parity)
            self.log.fec_parity_sent += 1
            self.log.bytes_sent += parity.size_bytes
            lost = [
                start + offset
                for offset in range(len(window))
                if not fates[start + offset]
            ]
            if len(lost) == 1 and parity_survives:
                # Reconstruct the erased payload from parity ^ survivors
                # (exact for a single erasure), then deliver the repair.
                index = lost[0]
                survivors = [
                    p for j, p in enumerate(window, start) if j != index
                ]
                rebuilt = xor_parity_payload([parity, *survivors])
                original = packets[index]
                packets[index] = dataclasses.replace(
                    original, payload=rebuilt[: len(original.payload)]
                )
                fates[index] = True
                self.log.fec_recovered += 1

    def _apply_retx(self, packets: list[Packet], fates: list[bool]) -> None:
        for index, packet in enumerate(packets):
            if fates[index]:
                continue
            for _ in range(self.retx_limit):
                self.log.retransmissions += 1
                self.log.bytes_sent += packet.size_bytes
                if self.loss_model.survives(packet):
                    fates[index] = True
                    break
            if not fates[index]:
                self.log.deadline_drops += 1

    def transmit(self, packets: list[Packet]) -> list[Packet]:
        """Return the data packets that survive, preserving order."""
        packets = list(packets)
        fates = []
        for packet in packets:
            self.log.sent += 1
            self.log.bytes_sent += packet.size_bytes
            fates.append(self.loss_model.survives(packet))
        if self.fec_window and packets:
            self._apply_fec(packets, fates)
        if self.retx_limit:
            self._apply_retx(packets, fates)
        survivors = []
        for packet, fate in zip(packets, fates):
            if fate:
                survivors.append(packet)
                self.log.delivered += 1
                self.log.bytes_delivered += packet.size_bytes
            else:
                self.log.lost_packets.append(packet.sequence_number)
                self.log.lost_frames.add(packet.frame_index)
        lost = len(packets) - len(survivors)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count(packets_sent=len(packets), packets_lost=lost)
            tracer.metrics.inc("channel.packets_sent", len(packets))
            tracer.metrics.inc("channel.packets_lost", lost)
        return survivors
