"""RTP-like packetization of encoded frames.

Per the paper's setup, "the variable-size encoded output of each frame
is contained by a single packet as long as it does not exceed the
maximum transfer unit (MTU)".  Frames larger than the MTU are split into
several packets.  Splitting happens at macroblock boundaries (the
encoder records each macroblock's bit offset), and every fragment gets a
self-describing header (frame index, type, QP, macroblock range) so it
is independently decodable — the RTP H.263 payload-format idea.  Losing
one fragment therefore costs only the macroblocks it carried.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codec.bitstream import BitWriter, append_bit_slice
from repro.codec.syntax import FragmentHeader, write_fragment_header
from repro.codec.types import CodecConfig, EncodedFrame

#: Default maximum transfer unit in bytes (802.11 / Ethernet payload).
DEFAULT_MTU = 1500

#: Bytes of RTP-ish transport header accounted per packet (RTP fixed
#: header is 12 bytes; we bill it for bitrate accounting but do not
#: serialize it).
TRANSPORT_HEADER_BYTES = 12


@dataclass(frozen=True)
class Packet:
    """One transmitted packet.

    Attributes:
        sequence_number: global packet sequence number.
        frame_index: the video frame this packet belongs to.
        fragment_index: position among the frame's fragments.
        fragments_in_frame: total fragments the frame was split into.
        payload: fragment bytes (header + macroblock layer bits).
    """

    sequence_number: int
    frame_index: int
    fragment_index: int
    fragments_in_frame: int
    payload: bytes

    @property
    def size_bytes(self) -> int:
        """On-the-wire size including transport header."""
        return len(self.payload) + TRANSPORT_HEADER_BYTES


class Packetizer:
    """Splits encoded frames into MTU-sized, independently decodable packets."""

    def __init__(self, config: CodecConfig, mtu: int = DEFAULT_MTU) -> None:
        if mtu < 64:
            raise ValueError(f"MTU {mtu} is unrealistically small")
        self.config = config
        self.mtu = mtu
        self._sequence = 0

    def reset(self) -> None:
        self._sequence = 0

    def packetize(self, frame: EncodedFrame) -> list[Packet]:
        """Turn one encoded frame into one or more packets."""
        if not frame.mb_bit_offsets:
            raise ValueError("encoded frame carries no macroblock offsets")
        budget_bits = (self.mtu - TRANSPORT_HEADER_BYTES) * 8
        spans = self._split_spans(frame, budget_bits)
        packets = []
        for fragment_index, (first_mb, mb_count) in enumerate(spans):
            payload = self._fragment_payload(frame, first_mb, mb_count)
            packets.append(
                Packet(
                    sequence_number=self._sequence,
                    frame_index=frame.frame_index,
                    fragment_index=fragment_index,
                    fragments_in_frame=len(spans),
                    payload=payload,
                )
            )
            self._sequence += 1
        return packets

    def packetize_sequence(self, frames: list[EncodedFrame]) -> list[Packet]:
        return [packet for frame in frames for packet in self.packetize(frame)]

    def _split_spans(
        self, frame: EncodedFrame, budget_bits: int
    ) -> list[tuple[int, int]]:
        """Greedy split of the macroblock range into MTU-sized spans."""
        offsets = frame.mb_bit_offsets
        mb_count = len(offsets) - 1
        header_slack = 64  # fragment header upper bound in bits
        spans: list[tuple[int, int]] = []
        first = 0
        while first < mb_count:
            last = first
            while (
                last + 1 < mb_count
                and offsets[last + 2] - offsets[first] + header_slack
                <= budget_bits
            ):
                last += 1
            spans.append((first, last - first + 1))
            first = last + 1
        return spans

    def _fragment_payload(
        self, frame: EncodedFrame, first_mb: int, mb_count: int
    ) -> bytes:
        writer = BitWriter()
        write_fragment_header(
            writer,
            FragmentHeader(
                frame_index=frame.frame_index,
                frame_type=frame.frame_type,
                qp=frame.qp,
                first_mb=first_mb,
                mb_count=mb_count,
            ),
        )
        start = frame.mb_bit_offsets[first_mb]
        stop = frame.mb_bit_offsets[first_mb + mb_count]
        append_bit_slice(writer, frame.payload, start, stop - start)
        return writer.getvalue()


class Depacketizer:
    """Groups surviving packets back into per-frame fragment lists."""

    def group_by_frame(
        self, packets: list[Packet], n_frames: int
    ) -> list[list[bytes]]:
        """Fragment payloads per frame index; empty list = frame lost."""
        if n_frames < 0:
            raise ValueError("n_frames must be >= 0")
        frames: list[list[tuple[int, bytes]]] = [[] for _ in range(n_frames)]
        for packet in packets:
            if 0 <= packet.frame_index < n_frames:
                frames[packet.frame_index].append(
                    (packet.fragment_index, packet.payload)
                )
        return [
            [payload for _, payload in sorted(fragments)]
            for fragments in frames
        ]
