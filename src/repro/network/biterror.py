"""Bit-error channels: corruption, not just loss.

The paper's introduction motivates intra refresh with *both* failure
modes of wireless links: packets that vanish, and bits that flip —
"because of VLC, a single bit error causes the decoder to lose a
synchronization point that makes the following bits useless."  The
packet-loss models in :mod:`repro.network.loss` cover the first; this
module covers the second: a channel that delivers packets but flips
payload bits with a given bit-error rate (BER).

The decoder's salvage behaviour (decode up to the first syntax error,
conceal the rest of the fragment) is exactly what this channel
exercises; fragment headers are protected separately because real
systems send headers with stronger coding (and an undetected corrupt
header would mis-place macroblocks rather than lose them).
"""

from __future__ import annotations

import numpy as np

from repro.network.packet import Packet

#: Leading payload bytes treated as the protected fragment header.  The
#: fixed part of the header is 30 bits; 5 bytes also covers the two
#: Exp-Golomb fields for any realistic macroblock count.
PROTECTED_HEADER_BYTES = 5


class BitErrorChannel:
    """Flips payload bits i.i.d. with probability ``ber``.

    This is not a :class:`repro.network.loss.LossModel` — those decide a
    packet's fate; this transforms packet *contents*.  Compose them via
    :func:`transmit`-style call chains or
    :class:`repro.sim.pipeline.simulate`'s loss model plus manual
    corruption, e.g.::

        delivered = channel.transmit(packets)
        corrupted = bit_error_channel.corrupt(delivered)
    """

    def __init__(
        self,
        ber: float,
        seed: int = 0,
        protect_header: bool = True,
        protect_first_frame: bool = True,
    ) -> None:
        """Args:
        ber: bit-error rate in [0, 1].
        seed: RNG seed.
        protect_header: never flip the first
            :data:`PROTECTED_HEADER_BYTES` of a payload.
        protect_first_frame: leave frame 0 pristine (the error-free
            starting point every scheme assumes).
        """
        if not 0.0 <= ber <= 1.0:
            raise ValueError(f"BER must be in [0, 1], got {ber}")
        self.ber = ber
        self.seed = seed
        self.protect_header = protect_header
        self.protect_first_frame = protect_first_frame
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def corrupt_payload(self, payload: bytes, protected_prefix: int) -> bytes:
        """Flip bits of one payload beyond the protected prefix."""
        if self.ber == 0.0 or len(payload) <= protected_prefix:
            return payload
        data = np.frombuffer(payload, dtype=np.uint8).copy()
        bits = np.unpackbits(data[protected_prefix:])
        flips = self._rng.random(bits.size) < self.ber
        bits ^= flips.astype(np.uint8)
        data[protected_prefix:] = np.packbits(bits)
        return data.tobytes()

    def corrupt(self, packets: list[Packet]) -> list[Packet]:
        """Return the packets with payload bits flipped at the BER."""
        out = []
        for packet in packets:
            if self.protect_first_frame and packet.frame_index == 0:
                out.append(packet)
                continue
            prefix = PROTECTED_HEADER_BYTES if self.protect_header else 0
            payload = self.corrupt_payload(packet.payload, prefix)
            if payload is packet.payload:
                out.append(packet)
            else:
                out.append(
                    Packet(
                        sequence_number=packet.sequence_number,
                        frame_index=packet.frame_index,
                        fragment_index=packet.fragment_index,
                        fragments_in_frame=packet.fragments_in_frame,
                        payload=payload,
                    )
                )
        return out
