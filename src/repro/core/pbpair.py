"""The PBPAIR controller: probability-driven encoding decisions.

Ties the correctness matrix to the two integration points the paper
describes (Section 3.1):

* **Encoding mode selection** (3.1.1): a macroblock whose probability of
  correctness has fallen below the user's ``Intra_Th`` is intra-coded
  *without running motion estimation* — the early decision that saves
  energy.
* **Probability-aware motion estimation** (3.1.2): among candidate
  reference blocks, prefer ones likely to survive transmission.  The
  exact formulation lives in the unavailable tech report [15]; we use
  the expected-distortion form it implies (DESIGN.md, substitution #5):
  if the reference area is lost (probability ``1 - sigma_min``) the
  decoder predicts from concealed data, so the candidate's cost is
  penalized in proportion to that risk::

      cost = SAD + loss_penalty_per_pixel * 256 * (1 - sigma_min)

  where ``sigma_min`` is the minimum correctness over the macroblocks
  the candidate block overlaps — exactly the "related MBs" term of
  update formula (1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.codec.motion import MECostFunction
from repro.core.correctness import (
    CorrectnessMatrix,
    DEFAULT_SIMILARITY_SCALE,
    similarity_from_sad,
)


@dataclass(frozen=True)
class PBPAIRConfig:
    """PBPAIR tuning knobs.

    Attributes:
        intra_th: the user-expectation threshold ``Intra_Th`` in [0, 1].
            0 disables resilience (pure compression efficiency); 1 makes
            every macroblock intra (maximum robustness) — the two
            extremes Section 4.3 calls out.
        plr: assumed network packet loss rate ``alpha`` in [0, 1].
        loss_penalty_per_pixel: weight of the probability term in the ME
            cost, in grey levels per pixel of equivalent SAD.  0 turns
            the probability-aware ME off (ablation lever).
        similarity_scale: grey-level scale of the similarity factor
            (see :func:`repro.core.correctness.similarity_from_sad`).
        max_refresh_per_frame: optional cap on intra refreshes per
            frame.  All sigmas start at 1 and similar content decays at
            similar rates, so threshold crossings arrive in *waves*;
            uncapped, those waves make burst frames that clog a
            rate-limited link exactly the way the paper criticizes
            GOP's I-frames for.  With a cap, the most-at-risk (lowest
            sigma) macroblocks refresh first and the rest wait a frame
            or two — same refresh budget, smooth bitstream.  None
            disables the cap (the paper's plain formulation).
    """

    intra_th: float = 0.3
    plr: float = 0.1
    loss_penalty_per_pixel: float = 8.0
    similarity_scale: float = DEFAULT_SIMILARITY_SCALE
    max_refresh_per_frame: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.intra_th <= 1.0:
            raise ValueError(f"Intra_Th must be in [0, 1], got {self.intra_th}")
        if not 0.0 <= self.plr <= 1.0:
            raise ValueError(f"PLR must be in [0, 1], got {self.plr}")
        if self.loss_penalty_per_pixel < 0:
            raise ValueError("loss_penalty_per_pixel must be >= 0")
        if self.similarity_scale <= 0:
            raise ValueError("similarity_scale must be > 0")
        if self.max_refresh_per_frame is not None and self.max_refresh_per_frame < 1:
            raise ValueError("max_refresh_per_frame must be >= 1")


class PBPAIRController:
    """Stateful PBPAIR decision engine for one encoding run.

    The controller is deliberately independent of the encoder: the
    resilience adapter (:class:`repro.resilience.PBPAIRStrategy`) wires
    its three methods into the encoder's hook pipeline.
    """

    def __init__(self, config: PBPAIRConfig, mb_rows: int, mb_cols: int) -> None:
        self.config = config
        self.matrix = CorrectnessMatrix(mb_rows, mb_cols)
        self._plr = config.plr
        self._intra_th = config.intra_th

    @property
    def plr(self) -> float:
        """Currently assumed packet loss rate (adaptable at runtime)."""
        return self._plr

    @plr.setter
    def plr(self, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"PLR must be in [0, 1], got {value}")
        self._plr = value

    @property
    def intra_th(self) -> float:
        """Current ``Intra_Th`` (adaptable at runtime, Section 3.2)."""
        return self._intra_th

    @intra_th.setter
    def intra_th(self, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"Intra_Th must be in [0, 1], got {value}")
        self._intra_th = value

    def reset(self) -> None:
        """Restart from the error-free initial state."""
        self.matrix.reset()
        self._plr = self.config.plr
        self._intra_th = self.config.intra_th

    def select_intra_macroblocks(self) -> np.ndarray:
        """Figure 4's threshold test: ``sigma < Intra_Th`` => intra.

        Returns the bool mask of macroblocks to intra-code before ME.
        With ``max_refresh_per_frame`` set, only the lowest-sigma
        macroblocks up to the cap refresh now; the rest stay inter and
        cross the threshold again next frame (deferred, not dropped).
        """
        mask = self.matrix.sigma < self._intra_th
        cap = self.config.max_refresh_per_frame
        if cap is None or int(mask.sum()) <= cap:
            return mask
        sigma = self.matrix.sigma
        flat_candidates = np.flatnonzero(mask.reshape(-1))
        order = np.argsort(sigma.reshape(-1)[flat_candidates], kind="stable")
        keep = flat_candidates[order[:cap]]
        capped = np.zeros(sigma.size, dtype=bool)
        capped[keep] = True
        return capped.reshape(sigma.shape)

    def me_cost_function(self) -> MECostFunction:
        """Build the probability-aware ME cost for the current sigma.

        The returned callable matches
        :data:`repro.codec.motion.MECostFunction`; it is bound to a
        snapshot of the padded sigma so a whole frame's search sees one
        consistent state.
        """
        penalty = self.config.loss_penalty_per_pixel * 256.0
        padded = np.pad(self.matrix.sigma, 1, mode="edge")

        def cost(
            sad: np.ndarray,
            dy: np.ndarray,
            dx: np.ndarray,
            mb_row: np.ndarray,
            mb_col: np.ndarray,
        ) -> np.ndarray:
            rows = np.asarray(mb_row) + 1
            cols = np.asarray(mb_col) + 1
            dy_sign = np.sign(dy).astype(np.int64)
            dx_sign = np.sign(dx).astype(np.int64)
            sigma_min = padded[rows, cols]
            sigma_min = np.minimum(sigma_min, padded[rows + dy_sign, cols])
            sigma_min = np.minimum(sigma_min, padded[rows, cols + dx_sign])
            sigma_min = np.minimum(
                sigma_min, padded[rows + dy_sign, cols + dx_sign]
            )
            return sad + penalty * (1.0 - sigma_min)

        return cost

    def update_after_frame(
        self,
        modes: np.ndarray,
        mvs: np.ndarray,
        colocated_sad: np.ndarray,
    ) -> None:
        """Advance the correctness matrix after a frame is encoded.

        ``colocated_sad`` feeds the similarity factor for the paper's
        copy-concealment assumption.
        """
        similarity = similarity_from_sad(
            colocated_sad, scale=self.config.similarity_scale
        )
        self.matrix.update(self._plr, modes, mvs, similarity)
