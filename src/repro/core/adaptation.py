"""Power-awareness extension (Section 3.2): adapting ``Intra_Th``.

The paper observes that PBPAIR's operating point is a pair
``(PLR, Intra_Th)`` and sketches three adaptation policies:

* when the *network* changes, shift ``Intra_Th`` so the intra-macroblock
  rate (and therefore bit rate and energy) stays put
  (:func:`intra_th_for_plr_change`);
* track a target intra rate from encoder feedback
  (:class:`FeedbackIntraThController`);
* maximize resilience within a residual-energy budget
  (:class:`EnergyBudgetController`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.correctness import refresh_interval


def intra_th_for_plr_change(
    intra_th: float, old_plr: float, new_plr: float
) -> float:
    """Shift ``Intra_Th`` so the refresh rate survives a PLR change.

    Under approximation (3) a macroblock is refreshed every
    ``n = log(Intra_Th) / log(1 - PLR)`` frames.  Holding ``n`` constant
    across a PLR change gives::

        Th_new = Th_old ** (log(1 - PLR_new) / log(1 - PLR_old))

    which realizes the paper's "adapting (decreasing) the Intra_Th by
    the amount of the PLR increase can generate similar number of intra
    macro blocks" — note the exponent exceeds 1 when PLR rises, so the
    threshold indeed *decreases*.

    Degenerate PLRs (0 or 1 on either side) have no finite refresh
    interval to preserve; the threshold is returned unchanged.
    """
    if not 0.0 <= intra_th <= 1.0:
        raise ValueError(f"Intra_Th must be in [0, 1], got {intra_th}")
    for name, value in (("old_plr", old_plr), ("new_plr", new_plr)):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    if intra_th in (0.0, 1.0):
        return intra_th
    if old_plr in (0.0, 1.0) or new_plr in (0.0, 1.0):
        return intra_th
    exponent = np.log(1.0 - new_plr) / np.log(1.0 - old_plr)
    return float(np.clip(intra_th**exponent, 0.0, 1.0))


@dataclass
class FeedbackIntraThController:
    """Proportional controller tracking a target intra-macroblock rate.

    Each frame, feed the observed intra fraction; the controller nudges
    ``Intra_Th`` toward the value that produces ``target_intra_fraction``
    intra macroblocks per frame.  Raising the threshold raises the intra
    rate (more macroblocks fall below it), so the correction has the
    same sign as the tracking error.

    Attributes:
        intra_th: current threshold (mutated by :meth:`observe`).
        target_intra_fraction: desired intra macroblocks per frame.
        gain: proportional gain; conservative values (0.05-0.2) avoid
            oscillation against the one-frame feedback delay.
        min_th, max_th: clamp range keeping the operating point sane.
    """

    intra_th: float
    target_intra_fraction: float
    gain: float = 0.1
    min_th: float = 0.0
    max_th: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.target_intra_fraction <= 1.0:
            raise ValueError("target_intra_fraction must be in [0, 1]")
        if self.gain <= 0:
            raise ValueError("gain must be positive")
        if not 0.0 <= self.min_th <= self.max_th <= 1.0:
            raise ValueError("require 0 <= min_th <= max_th <= 1")

    def observe(self, intra_fraction: float) -> float:
        """Update with one frame's intra fraction; returns the new Th."""
        if not 0.0 <= intra_fraction <= 1.0:
            raise ValueError("intra_fraction must be in [0, 1]")
        error = self.target_intra_fraction - intra_fraction
        self.intra_th = float(
            np.clip(self.intra_th + self.gain * error, self.min_th, self.max_th)
        )
        return self.intra_th


@dataclass
class EnergyBudgetController:
    """Maximize error resilience within a per-frame energy budget.

    The paper: "PBPAIR can be extended to adjust the Intra_Th parameter
    to maximize error resilient level within current residual energy
    constraint."  Intra refresh *saves* energy (skipped ME), so when
    recent frames exceed the budget the controller raises ``Intra_Th``
    (more refresh, less ME); when there is slack it lowers the threshold
    to buy back compression efficiency.

    Attributes:
        intra_th: current threshold (mutated by :meth:`observe_energy`).
        budget_joules_per_frame: the per-frame energy allowance.
        step: threshold adjustment per observation.
        deadband: relative tolerance around the budget within which the
            threshold is left alone — without it the controller chatters
            between adjacent thresholds every frame, and after a quiet
            stretch it has walked far from any useful operating point.
    """

    intra_th: float
    budget_joules_per_frame: float
    step: float = 0.02
    deadband: float = 0.1
    min_th: float = 0.0
    max_th: float = 1.0

    def __post_init__(self) -> None:
        if self.budget_joules_per_frame <= 0:
            raise ValueError("energy budget must be positive")
        if self.step <= 0:
            raise ValueError("step must be positive")
        if self.deadband < 0:
            raise ValueError("deadband must be >= 0")
        if not 0.0 <= self.min_th <= self.max_th <= 1.0:
            raise ValueError("require 0 <= min_th <= max_th <= 1")

    def observe_energy(self, joules_last_frame: float) -> float:
        """Update with one frame's measured energy; returns the new Th."""
        if joules_last_frame < 0:
            raise ValueError("energy must be >= 0")
        budget = self.budget_joules_per_frame
        if joules_last_frame > budget * (1.0 + self.deadband):
            delta = self.step
        elif joules_last_frame < budget * (1.0 - self.deadband):
            delta = -self.step
        else:
            return self.intra_th
        self.intra_th = float(
            np.clip(self.intra_th + delta, self.min_th, self.max_th)
        )
        return self.intra_th

    def expected_refresh_interval(self, plr: float) -> float:
        """Analytic refresh period at the current operating point."""
        return refresh_interval(plr, self.intra_th)
