"""Instrumentation for PBPAIR's internal state.

The correctness matrix is the paper's central object, but it lives
inside the encoding loop; these helpers expose its evolution for
analysis, debugging and visualization without touching the codec:

* :class:`InstrumentedPBPAIRStrategy` — a drop-in PBPAIR strategy that
  records a :class:`SigmaTrace` while encoding;
* :class:`SigmaTrace` — per-frame snapshots of sigma plus derived
  series (mean/min sigma, refresh counts, mean reference correctness);
* :func:`sigma_heatmap` — an ASCII rendering of one sigma snapshot,
  for terminals and logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.codec.types import FrameType, MacroblockMode
from repro.core.correctness import min_sigma_related
from repro.core.pbpair import PBPAIRConfig
from repro.resilience.base import FrameFeedback
from repro.resilience.pbpair_strategy import PBPAIRStrategy

#: Shade ramp for :func:`sigma_heatmap`, darkest = lowest correctness.
_SHADES = " .:-=+*#%@"


@dataclass(frozen=True)
class SigmaSnapshot:
    """PBPAIR state observed after encoding one frame.

    ``sigma_before`` is the matrix the frame's decisions were made
    against (what the threshold test saw); ``sigma_after`` includes the
    frame's own update.
    """

    frame_index: int
    frame_type: FrameType
    sigma_before: np.ndarray
    sigma_after: np.ndarray
    intra_mask: np.ndarray
    reference_sigma_mean: Optional[float]


@dataclass
class SigmaTrace:
    """The recorded evolution of the correctness matrix."""

    snapshots: list[SigmaSnapshot] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.snapshots)

    def mean_sigma_series(self) -> list[float]:
        """Per-frame mean correctness (after the update)."""
        return [float(s.sigma_after.mean()) for s in self.snapshots]

    def min_sigma_series(self) -> list[float]:
        """Per-frame worst-macroblock correctness."""
        return [float(s.sigma_after.min()) for s in self.snapshots]

    def refresh_counts(self) -> list[int]:
        """Per-frame intra (refresh) macroblock counts."""
        return [int(s.intra_mask.sum()) for s in self.snapshots]

    def refresh_intervals(self) -> np.ndarray:
        """Observed per-macroblock mean frames between refreshes.

        Returns an ``(mb_rows, mb_cols)`` array; macroblocks refreshed
        at most once report ``inf``.  Comparing this map against
        :func:`repro.core.correctness.refresh_interval` shows how far
        real content pulls the dynamics away from approximation (3).
        """
        if not self.snapshots:
            raise ValueError("empty trace")
        shape = self.snapshots[0].intra_mask.shape
        intervals = np.full(shape, np.inf)
        last_refresh = np.full(shape, -1.0)
        totals = np.zeros(shape)
        counts = np.zeros(shape)
        for snapshot in self.snapshots:
            hit = snapshot.intra_mask
            had_previous = hit & (last_refresh >= 0)
            totals[had_previous] += (
                snapshot.frame_index - last_refresh[had_previous]
            )
            counts[had_previous] += 1
            last_refresh[hit] = snapshot.frame_index
        with np.errstate(divide="ignore", invalid="ignore"):
            intervals = np.where(counts > 0, totals / np.maximum(counts, 1), np.inf)
        return intervals


class InstrumentedPBPAIRStrategy(PBPAIRStrategy):
    """PBPAIR strategy that records a :class:`SigmaTrace` as it encodes.

    Behaviourally identical to :class:`PBPAIRStrategy` (same decisions,
    same counter charges); it only observes.
    """

    def __init__(self, config: Optional[PBPAIRConfig] = None) -> None:
        super().__init__(config)
        self.trace = SigmaTrace()

    def reset(self) -> None:
        super().reset()
        self.trace = SigmaTrace()

    def frame_done(self, feedback: FrameFeedback) -> None:
        controller = self._ensure_controller(*feedback.modes.shape)
        sigma_before = controller.matrix.sigma.copy()
        intra_mask = feedback.modes == MacroblockMode.INTRA
        reference_mean: Optional[float] = None
        if feedback.frame_type is FrameType.P:
            inter = ~intra_mask
            if inter.any():
                sigmas = min_sigma_related(sigma_before, feedback.mvs)
                reference_mean = float(sigmas[inter].mean())
        super().frame_done(feedback)
        self.trace.snapshots.append(
            SigmaSnapshot(
                frame_index=feedback.frame_index,
                frame_type=feedback.frame_type,
                sigma_before=sigma_before,
                sigma_after=controller.matrix.sigma.copy(),
                intra_mask=np.asarray(intra_mask, dtype=bool),
                reference_sigma_mean=reference_mean,
            )
        )


def sigma_heatmap(sigma: np.ndarray, mark: Optional[np.ndarray] = None) -> str:
    """Render a sigma matrix as ASCII art.

    High correctness renders dense (``@``), low renders sparse; cells
    where ``mark`` is True (e.g. this frame's refreshes) render as
    ``R`` regardless of shade.
    """
    sigma = np.asarray(sigma, dtype=np.float64)
    if sigma.ndim != 2:
        raise ValueError("sigma must be a 2-D matrix")
    if mark is not None and mark.shape != sigma.shape:
        raise ValueError("mark mask must match sigma's shape")
    lines = []
    levels = np.clip(
        (sigma * (len(_SHADES) - 1)).round().astype(int), 0, len(_SHADES) - 1
    )
    for r in range(sigma.shape[0]):
        row = []
        for c in range(sigma.shape[1]):
            if mark is not None and mark[r, c]:
                row.append("R")
            else:
                row.append(_SHADES[levels[r, c]])
        lines.append("".join(row))
    return "\n".join(lines)
