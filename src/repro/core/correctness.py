"""The probability-of-correctness matrix ``C^k`` and its update rules.

For each macroblock ``m[i,j]`` of frame ``k`` the matrix holds
``sigma[i,j] in [0, 1]``: the encoder's estimate of the probability that
the decoder's copy of that macroblock is correct, given the network
packet loss rate ``alpha`` (PLR) and the coding decisions made so far.

The paper's update rules (Section 3.1.3):

* inter macroblock (formula (1))::

      sigma_k = (1 - alpha) * min(sigma of related MBs)
                + alpha * similarity(m_k, m_{k-1}) * sigma_{k-1}

  "related MBs" are the macroblocks of the previous frame overlapped by
  the motion-compensated reference block; the first term is the
  error-free-transmission case (correctness inherited from the
  prediction chain), the second the loss case (the decoder conceals by
  copying, so correctness degrades by how *dissimilar* the colocated
  content is).

* intra macroblock (formula (2)): the first term's chain probability is
  replaced by 1 — an intra macroblock refreshes the chain::

      sigma_k = (1 - alpha) * 1 + alpha * similarity * sigma_{k-1}

* approximation (formula (3)), for no similarity and all-inter coding::

      sigma_k = (1 - alpha) ** k

The similarity factor is parameterized by the concealment scheme; for
the paper's copy-from-previous concealment we derive it from the
colocated SAD (see :func:`similarity_from_sad`).
"""

from __future__ import annotations

import numpy as np

from repro.codec.types import MacroblockMode

#: Default scale for :func:`similarity_from_sad`: a mean absolute
#: per-pixel difference of this many grey levels maps similarity to 0.
DEFAULT_SIMILARITY_SCALE = 64.0


def similarity_from_sad(
    colocated_sad: np.ndarray,
    mb_pixels: int = 256,
    scale: float = DEFAULT_SIMILARITY_SCALE,
) -> np.ndarray:
    """Similarity factor for copy concealment, from colocated SAD.

    The paper: "if we use a simple copy scheme ... we can calculate the
    similarity factor from SAD value between macro block m[k-1] and
    m[k]".  We map the mean absolute pixel difference linearly onto
    [0, 1]: identical blocks give 1, blocks differing by ``scale`` grey
    levels per pixel (or more) give 0.
    """
    if scale <= 0:
        raise ValueError("similarity scale must be positive")
    mad = np.asarray(colocated_sad, dtype=np.float64) / mb_pixels
    return np.clip(1.0 - mad / scale, 0.0, 1.0)


def approximate_sigma(plr: float, k: int) -> float:
    """Formula (3): ``sigma_k = (1 - alpha)^k`` for an all-inter chain."""
    if not 0.0 <= plr <= 1.0:
        raise ValueError(f"PLR must be in [0, 1], got {plr}")
    if k < 0:
        raise ValueError("frame count must be >= 0")
    return (1.0 - plr) ** k


def refresh_interval(plr: float, intra_th: float) -> float:
    """Frames until ``sigma`` decays below ``Intra_Th`` under formula (3).

    The analytical refresh period of PBPAIR: solve
    ``(1 - alpha)^n = Intra_Th`` for n.  Returns ``inf`` when the chain
    never decays (PLR 0) and 0 when refresh is immediate
    (``Intra_Th >= 1``).
    """
    if not 0.0 <= plr <= 1.0:
        raise ValueError(f"PLR must be in [0, 1], got {plr}")
    if not 0.0 <= intra_th <= 1.0:
        raise ValueError(f"Intra_Th must be in [0, 1], got {intra_th}")
    if intra_th >= 1.0:
        return 0.0
    if plr == 0.0 or intra_th == 0.0:
        return float("inf")
    return float(np.log(intra_th) / np.log(1.0 - plr))


def min_sigma_related(sigma: np.ndarray, mvs: np.ndarray) -> np.ndarray:
    """Minimum previous-frame sigma over each reference block's overlap.

    A reference block displaced by ``(dy, dx)`` with ``|dy|, |dx| < 16``
    overlaps at most four macroblocks: the colocated one and its
    neighbours toward the displacement signs.  Out-of-frame overlap
    clamps to the edge macroblock (matching the codec's edge-padded
    motion compensation).

    Args:
        sigma: ``(mb_rows, mb_cols)`` previous-frame correctness.
        mvs: ``(mb_rows, mb_cols, 2)`` integer motion field.

    Returns:
        ``(mb_rows, mb_cols)`` array of minima.
    """
    mb_rows, mb_cols = sigma.shape
    if mvs.shape != (mb_rows, mb_cols, 2):
        raise ValueError(f"motion field shape {mvs.shape} mismatches sigma")
    if np.abs(mvs).max(initial=0) >= 16:
        raise ValueError("motion vectors must be within +/-15 pixels")
    padded = np.pad(sigma, 1, mode="edge")
    rows = np.arange(mb_rows)[:, None] + 1
    cols = np.arange(mb_cols)[None, :] + 1
    dy_sign = np.sign(mvs[:, :, 0]).astype(np.int64)
    dx_sign = np.sign(mvs[:, :, 1]).astype(np.int64)
    result = padded[rows, cols]
    result = np.minimum(result, padded[rows + dy_sign, cols])
    result = np.minimum(result, padded[rows, cols + dx_sign])
    result = np.minimum(result, padded[rows + dy_sign, cols + dx_sign])
    return result


class CorrectnessMatrix:
    """Mutable per-macroblock correctness state for one encoder run."""

    def __init__(self, mb_rows: int, mb_cols: int) -> None:
        if mb_rows < 1 or mb_cols < 1:
            raise ValueError("matrix dimensions must be >= 1")
        self.mb_rows = mb_rows
        self.mb_cols = mb_cols
        self._sigma = np.ones((mb_rows, mb_cols), dtype=np.float64)

    @property
    def sigma(self) -> np.ndarray:
        """Current correctness values (read-only view)."""
        view = self._sigma.view()
        view.setflags(write=False)
        return view

    def reset(self) -> None:
        """Back to the error-free start: every sigma is 1 (Figure 2)."""
        self._sigma.fill(1.0)

    def update(
        self,
        plr: float,
        modes: np.ndarray,
        mvs: np.ndarray,
        similarity: np.ndarray,
    ) -> None:
        """Advance ``C^{k-1}`` to ``C^k`` after encoding frame ``k``.

        Args:
            plr: network packet loss rate ``alpha`` assumed for frame k.
            modes: ``(mb_rows, mb_cols)`` final macroblock modes.
            mvs: ``(mb_rows, mb_cols, 2)`` coded motion field.
            similarity: ``(mb_rows, mb_cols)`` similarity factors in
                [0, 1] (see :func:`similarity_from_sad`).
        """
        if not 0.0 <= plr <= 1.0:
            raise ValueError(f"PLR must be in [0, 1], got {plr}")
        shape = (self.mb_rows, self.mb_cols)
        if modes.shape != shape or similarity.shape != shape:
            raise ValueError("modes/similarity shape mismatch")
        if np.any((similarity < 0) | (similarity > 1)):
            raise ValueError("similarity factors must lie in [0, 1]")

        intra = modes == MacroblockMode.INTRA
        chain = min_sigma_related(self._sigma, mvs)
        chain = np.where(intra, 1.0, chain)
        self._sigma = (1.0 - plr) * chain + plr * similarity * self._sigma
        # Floating-point guard: the convex combination of values in
        # [0, 1] stays in [0, 1], but keep it exact for comparisons.
        np.clip(self._sigma, 0.0, 1.0, out=self._sigma)
