"""PBPAIR — Probability Based Power Aware Intra Refresh (the paper's core).

Three pieces:

* :mod:`repro.core.correctness` — the per-macroblock *probability of
  correctness* matrix ``C^k`` and its update rules (the paper's
  formulas (1), (2) and the approximation (3)).
* :mod:`repro.core.pbpair` — the controller that turns the matrix into
  encoding decisions: threshold mode selection against ``Intra_Th``
  (Section 3.1.1) and the probability-aware motion-estimation cost
  (Section 3.1.2).
* :mod:`repro.core.adaptation` — the power-awareness extension of
  Section 3.2: adapting ``Intra_Th`` to PLR changes, energy budgets and
  quality targets.
"""

from repro.core.correctness import (
    CorrectnessMatrix,
    approximate_sigma,
    min_sigma_related,
    refresh_interval,
    similarity_from_sad,
)
from repro.core.pbpair import PBPAIRConfig, PBPAIRController
from repro.core.adaptation import (
    intra_th_for_plr_change,
    FeedbackIntraThController,
    EnergyBudgetController,
)
from repro.core.instrumentation import (
    InstrumentedPBPAIRStrategy,
    SigmaSnapshot,
    SigmaTrace,
    sigma_heatmap,
)

__all__ = [
    "CorrectnessMatrix",
    "approximate_sigma",
    "min_sigma_related",
    "refresh_interval",
    "similarity_from_sad",
    "PBPAIRConfig",
    "PBPAIRController",
    "intra_th_for_plr_change",
    "FeedbackIntraThController",
    "EnergyBudgetController",
    "InstrumentedPBPAIRStrategy",
    "SigmaSnapshot",
    "SigmaTrace",
    "sigma_heatmap",
]
