"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate`` — run one scheme over one sequence and a lossy channel,
  print the run summary.
* ``compare`` — the paper's Figure-5 style comparison (all five
  schemes, PBPAIR size-matched to PGOP-3; with ``--target-kbps`` every
  scheme instead runs under closed-loop rate control at one shared
  bitrate, with no calibration probes).
* ``sweep`` — the Section-4.3 (Intra_Th x PLR) operating-point table.
* ``sigma`` — encode with PBPAIR and print the correctness matrix as
  ASCII heatmaps (the paper's ``C^k``, live).
* ``trace`` — render the per-stage time/energy breakdown of a trace
  file written by a ``--trace`` run.
* ``info`` — list available schemes, sequences and device profiles.
* ``serve`` — run the long-lived encode daemon (HTTP+JSONL job API).
* ``submit`` — enqueue sessions on a running daemon.
* ``status`` — fleet summary or per-job status from a daemon (or,
  offline, from a queue journal file).
* ``drain`` — stop a daemon accepting jobs and let it finish.

The runner flags shared by ``compare``/``sweep``/``serve``
(``--jobs``, ``--no-cache``, ``--cache-dir``, ``--faults``,
``--retries``, ``--job-timeout``, ``--manifest``,
``--no-stream-cache``) all resolve into one
:class:`repro.sim.runner.RunnerOptions` bundle, so the execution
semantics are identical whether a grid runs batch or behind the
daemon.

``simulate``, ``compare``, ``sweep`` and ``submit`` accept
``--target-kbps KBPS`` (and ``--rate-sensitivity X``): the encode runs
under the closed-loop rate controller
(:class:`repro.codec.rate.ClosedLoopRateController`) steered to that
bitrate instead of at a fixed quantizer.

``simulate``, ``compare`` and ``sweep`` accept ``--trace`` (and
``--trace-dir DIR``, which implies it): the run executes under a
:mod:`repro.obs` tracer, leaves ``trace.jsonl`` in the trace directory,
and prints the same per-stage breakdown ``repro trace`` would.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.energy.profiles import DEVICE_PROFILES
from repro.faults import parse_fault_plan
from repro.network.loss import UniformLoss
from repro.obs import (
    MERGED_TRACE_NAME,
    TraceFormatError,
    Tracer,
    load_trace,
    trace_summary,
    use_tracer,
    write_trace,
)
from repro.codec.rate import RateControlConfig, build_rate_controller
from repro.resilience.registry import STRATEGY_BUILDERS, build_strategy
from repro.scenarios import (
    FLEET_COLUMNS,
    FLEET_SCHEMES,
    ScenarioFormatError,
    available_packs,
    parse_scenario,
    run_fleet,
)
from repro.service.daemon import DEFAULT_PORT as SERVICE_DEFAULT_PORT
from repro.sim.experiment import (
    RateMatchSpec,
    calibrate_intra_th,
    total_encoded_bytes,
)
from repro.sim.pipeline import SimulationConfig, simulate
from repro.sim.report import format_table
from repro.sim.runner import (
    DEFAULT_CACHE_DIR,
    JobFailure,
    JobResult,
    JobSpec,
    RunnerOptions,
)
from repro.video.synthetic import SEQUENCE_GENERATORS

#: Where ``--trace`` runs leave their JSONL files unless ``--trace-dir``
#: points elsewhere.
DEFAULT_TRACE_DIR = ".repro_trace"


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sequence",
        choices=sorted(SEQUENCE_GENERATORS),
        default="foreman",
        help="synthetic test clip (default: foreman)",
    )
    parser.add_argument(
        "--frames", type=int, default=90, help="clip length (default: 90)"
    )
    parser.add_argument(
        "--plr", type=float, default=0.1, help="packet loss rate (default: 0.1)"
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="channel seed (default: 1)"
    )
    parser.add_argument(
        "--device",
        choices=sorted(DEVICE_PROFILES),
        default="ipaq",
        help="energy profile (default: ipaq)",
    )


def _add_scenario_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario",
        metavar="PACK",
        default=None,
        help="channel scenario pack: a shipped pack name "
        f"({', '.join(available_packs())}), a JSON file path, or "
        "inline JSON; replaces the uniform --plr channel",
    )


def _scenario_pack(args: argparse.Namespace):
    """Resolve ``--scenario`` (absent on some commands) into a pack."""
    text = getattr(args, "scenario", None)
    if text is None:
        return None
    try:
        return parse_scenario(text)
    except (ScenarioFormatError, OSError) as error:
        raise SystemExit(f"--scenario: {error}")


def _add_runner_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the experiment grid; 0 = all cores "
        "(default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell instead of using the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-stream-cache",
        action="store_true",
        help="disable encoded-stream sharing: encode every grid cell "
        "from scratch instead of replaying one stream per operating "
        "point (results are identical either way)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-run a failed grid cell up to N extra times with "
        "exponential backoff (default: 0, no retries)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-job wall-clock limit in seconds (parallel runs only)",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help="write a JSON manifest recording every job's outcome, and "
        "degrade gracefully on failures instead of aborting",
    )
    _add_fault_options(parser)
    _add_trace_options(parser)


def _add_fault_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="inject a deterministic fault plan: a compact "
        "'kind[:prob],...' list (e.g. 'truncate:0.3,worker_crash'), an "
        "inline JSON object, or a JSON file path",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault plan's RNG streams (default: 0)",
    )


def _fault_plan(args: argparse.Namespace):
    """The parsed --faults plan, or None when no faults are requested."""
    if args.faults is None:
        return None
    try:
        return parse_fault_plan(args.faults, seed=args.fault_seed)
    except (ValueError, OSError) as error:
        raise SystemExit(f"bad --faults value: {error}")


def _add_rate_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--target-kbps",
        type=float,
        default=None,
        metavar="KBPS",
        help="closed-loop rate control: steer the encode to this bitrate; "
        "under `compare` every scheme runs at the same matched target "
        "(default: off)",
    )
    parser.add_argument(
        "--rate-sensitivity",
        type=float,
        default=1.0,
        metavar="X",
        help="rate-controller aggressiveness: fraction of the budget "
        "debt repaid per recovery window (default: 1.0; requires "
        "--target-kbps)",
    )


def _rate_config(args: argparse.Namespace) -> Optional[RateControlConfig]:
    """The parsed rate-control flags, or None when rate control is off."""
    if getattr(args, "target_kbps", None) is None:
        if getattr(args, "rate_sensitivity", 1.0) != 1.0:
            raise SystemExit("--rate-sensitivity requires --target-kbps")
        return None
    try:
        return RateControlConfig(
            target_kbps=args.target_kbps,
            sensitivity=args.rate_sensitivity,
        )
    except ValueError as error:
        raise SystemExit(f"bad rate-control flags: {error}")


def _add_trace_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="trace the run per pipeline stage and print the breakdown",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="write trace JSONL files to DIR (implies --trace; "
        f"default: {DEFAULT_TRACE_DIR})",
    )


def _trace_dir(args: argparse.Namespace) -> Optional[Path]:
    """The trace output directory, or None when tracing is off."""
    if args.trace_dir is not None:
        return Path(args.trace_dir)
    return Path(DEFAULT_TRACE_DIR) if args.trace else None


def _print_trace_report(trace_file: Optional[Path], args) -> None:
    if trace_file is None or not trace_file.exists():
        print("no trace written (all grid cells were cache hits?)",
              file=sys.stderr)
        return
    print()
    print(trace_summary(load_trace(trace_file), DEVICE_PROFILES[args.device]))
    print(f"trace written to {trace_file}")


def _runner_options(args: argparse.Namespace) -> RunnerOptions:
    """Resolve the shared runner flags into one options bundle."""
    try:
        return RunnerOptions(
            jobs=args.jobs,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            share_streams=not args.no_stream_cache,
            retries=args.retries,
            job_timeout=args.job_timeout,
            manifest_path=getattr(args, "manifest", None),
            faults=_fault_plan(args),
            trace_dir=_trace_dir(args) if hasattr(args, "trace") else None,
            rate=_rate_config(args),
            scenario=_scenario_pack(args),
        )
    except ValueError as error:
        raise SystemExit(str(error))


def _runner_setup(args: argparse.Namespace):
    """(options, cache, stream_cache) from the shared runner flags.

    The caches are built once here so calibration probes and the grid
    run share them within one command.
    """
    options = _runner_options(args)
    try:
        cache = options.build_cache()
    except (FileExistsError, NotADirectoryError):
        raise SystemExit(
            f"--cache-dir {args.cache_dir!r} exists and is not a directory"
        )
    stream_cache = options.build_stream_cache(cache)
    return options, cache, stream_cache


def _grid_results(args, jobs, options, cache, stream_cache=None):
    """Run a grid under ``options`` and unwrap it.

    Without ``--manifest`` any failed cell aborts the command with exit
    status 1 (after reporting every failure).  With ``--manifest`` the
    run completes partially instead: every outcome lands in the
    manifest file, failures are reported on stderr, and failed cells
    come back as ``None`` so callers can render the surviving rows.
    """
    outcomes = options.run(jobs, cache=cache, stream_cache=stream_cache)
    failures = [o for o in outcomes if isinstance(o, JobFailure)]
    for failure in failures:
        quarantined = " [quarantined]" if failure.quarantined else ""
        print(
            f"job {failure.spec.scheme} (PLR={failure.spec.plr}, "
            f"seed={failure.spec.channel_seed}) failed after "
            f"{failure.attempts} attempt(s){quarantined}: "
            f"{failure.error_type}: {failure.message}",
            file=sys.stderr,
        )
        if failure.traceback_text and args.manifest is None:
            print(failure.traceback_text, file=sys.stderr)
    if args.manifest is not None:
        print(f"manifest written to {args.manifest}", file=sys.stderr)
        return [
            o.result if isinstance(o, JobResult) else None for o in outcomes
        ]
    if failures:
        raise SystemExit(1)
    return [o.result for o in outcomes]


def _config(args: argparse.Namespace) -> SimulationConfig:
    return SimulationConfig(device=DEVICE_PROFILES[args.device])


def _sequence(args: argparse.Namespace):
    if args.frames < 1:
        raise SystemExit("--frames must be >= 1")
    return SEQUENCE_GENERATORS[args.sequence](args.frames)


def _cmd_simulate(args: argparse.Namespace) -> int:
    video = _sequence(args)
    if args.scheme.upper().startswith("PBPAIR"):
        strategy = build_strategy(
            "PBPAIR", intra_th=args.intra_th, plr=args.plr
        )
    else:
        strategy = build_strategy(args.scheme)
    faults = _fault_plan(args)
    rate = _rate_config(args)
    controller = build_rate_controller(rate)
    scenario = _scenario_pack(args)
    if scenario is not None:
        channel_kwargs = {"scenario": scenario, "scenario_seed": args.seed}
    else:
        channel_kwargs = {
            "loss_model": UniformLoss(plr=args.plr, seed=args.seed)
        }
    trace_dir = _trace_dir(args)
    trace_file: Optional[Path] = None
    if trace_dir is not None:
        tracer = Tracer(trace_id=f"{args.scheme} {video.name}")
        with use_tracer(tracer):
            result = simulate(
                video,
                strategy,
                config=_config(args),
                rate_controller=controller,
                faults=faults,
                **channel_kwargs,
            )
        trace_file = write_trace(trace_dir / MERGED_TRACE_NAME, tracer)
    else:
        result = simulate(
            video,
            strategy,
            config=_config(args),
            rate_controller=controller,
            faults=faults,
            **channel_kwargs,
        )
    print(f"sequence         : {video.name} ({result.n_frames} frames)")
    print(f"scheme           : {result.strategy_name}")
    print(f"delivered PSNR   : {result.average_psnr_decoder:.2f} dB")
    print(f"bad pixels       : {result.total_bad_pixels:,}")
    print(f"encoded size     : {result.total_bytes / 1024:.1f} KB")
    print(f"intra macroblocks: {100 * result.intra_fraction:.1f}%")
    if controller is not None:
        error_pct = (
            100.0
            * (controller.delivered_kbps - rate.target_kbps)
            / rate.target_kbps
        )
        print(
            f"delivered bitrate: {controller.delivered_kbps:.1f} kbps "
            f"(target {rate.target_kbps:g}, {error_pct:+.1f}%)"
        )
    print(f"encoding energy  : {result.energy_joules:.3f} J "
          f"({result.energy.device})")
    print(f"packets lost     : {len(result.channel_log.lost_packets)}"
          f"/{result.channel_log.sent}")
    if result.fault_events:
        by_kind: dict[str, int] = {}
        for event in result.fault_events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        rendered = " ".join(
            f"{kind}={count}" for kind, count in sorted(by_kind.items())
        )
        print(f"injected faults  : {len(result.fault_events)} ({rendered})")
        print(f"damaged fragments: {result.total_damaged_fragments}")
    if trace_file is not None:
        _print_trace_report(trace_file, args)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    video = _sequence(args)
    config = _config(args)
    options, cache, stream_cache = _runner_setup(args)
    rate = _rate_config(args)
    if rate is not None:
        return _compare_matched_bitrate(
            args, video, config, options, cache, stream_cache
        )
    print("Calibrating PBPAIR's Intra_Th to PGOP-3's size ...",
          file=sys.stderr)
    target = total_encoded_bytes(video, build_strategy("PGOP-3"), config)
    intra_th = calibrate_intra_th(
        video, target, plr=args.plr, config=config, max_iterations=8,
        cache=cache, stream_cache=stream_cache,
    )
    print(
        f"calibration: {intra_th.probes} probes, "
        f"{intra_th.unique_encodes} encodes "
        f"({intra_th.saved_encodes} served from cache)",
        file=sys.stderr,
    )
    schemes = ("NO", "PBPAIR", "PGOP-3", "GOP-3", "AIR-24")
    jobs = [
        JobSpec(
            scheme=spec,
            plr=args.plr,
            channel_seed=args.seed,
            sequence=args.sequence,
            n_frames=args.frames,
            config=config,
            pbpair_kwargs={"intra_th": intra_th},
        )
        for spec in schemes
    ]
    rows = []
    for spec, result in zip(
        schemes,
        _grid_results(args, jobs, options, cache, stream_cache),
    ):
        if result is None:
            continue
        rows.append(
            [
                spec,
                result.average_psnr_decoder,
                result.total_bad_pixels / 1e6,
                result.total_bytes / 1024,
                result.energy_joules,
                100 * result.intra_fraction,
            ]
        )
    print(
        format_table(
            ["scheme", "PSNR dB", "bad px M", "size KB", "energy J", "intra %"],
            rows,
            title=(
                f"{video.name}, {args.frames} frames, PLR={args.plr:.0%}, "
                f"PBPAIR Intra_Th={intra_th:.3f}"
            ),
        )
    )
    if options.trace_dir is not None:
        _print_trace_report(Path(options.trace_dir) / MERGED_TRACE_NAME, args)
    return 0


def _compare_matched_bitrate(
    args, video, config, options, cache, stream_cache
) -> int:
    """``compare --target-kbps``: every scheme at one bitrate, no probes.

    The closed-loop controller replaces the calibration bisection
    entirely — each scheme encodes once, steered to the shared target,
    and the table reports how precisely it was hit.
    """
    match = RateMatchSpec(
        target_kbps=args.target_kbps, sensitivity=args.rate_sensitivity
    )
    rate = match.rate_config()
    jobs = match.jobs(
        plr=args.plr,
        channel_seed=args.seed,
        sequence=args.sequence,
        n_frames=args.frames,
        config=config,
    )
    rows = []
    for spec, result in zip(
        match.schemes,
        _grid_results(args, jobs, options, cache, stream_cache),
    ):
        if result is None:
            continue
        delivered_kbps = (
            result.total_bytes * 8 / result.n_frames * rate.fps / 1000.0
        )
        error_pct = (
            100.0 * (delivered_kbps - rate.target_kbps) / rate.target_kbps
        )
        rows.append(
            [
                spec,
                result.average_psnr_decoder,
                result.total_bad_pixels / 1e6,
                delivered_kbps,
                error_pct,
                result.energy_joules,
                100 * result.intra_fraction,
            ]
        )
    print(
        format_table(
            ["scheme", "PSNR dB", "bad px M", "kbps", "err %", "energy J",
             "intra %"],
            rows,
            title=(
                f"{video.name}, {args.frames} frames, PLR={args.plr:.0%}, "
                f"matched bitrate {rate.target_kbps:g} kbps"
            ),
        )
    )
    if options.trace_dir is not None:
        _print_trace_report(Path(options.trace_dir) / MERGED_TRACE_NAME, args)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    video = _sequence(args)
    config = _config(args)
    options, cache, stream_cache = _runner_setup(args)
    thresholds = (0.0, 0.5, 0.8, 0.9, 0.95, 1.0)
    jobs = [
        JobSpec(
            scheme="PBPAIR",
            plr=args.plr,
            channel_seed=args.seed,
            sequence=args.sequence,
            n_frames=args.frames,
            config=config,
            pbpair_kwargs={"intra_th": th},
        )
        for th in thresholds
    ]
    rows = []
    for th, result in zip(
        thresholds,
        _grid_results(args, jobs, options, cache, stream_cache),
    ):
        if result is None:
            continue
        rows.append(
            [
                th,
                100 * result.intra_fraction,
                result.total_bytes / 1024,
                result.energy_joules,
                result.average_psnr_decoder,
                result.total_bad_pixels / 1e6,
            ]
        )
    print(
        format_table(
            ["Intra_Th", "intra %", "size KB", "energy J", "PSNR dB",
             "bad px M"],
            rows,
            title=(
                f"PBPAIR operating points: {video.name}, "
                f"{args.frames} frames, PLR={args.plr:.0%}"
            ),
        )
    )
    if options.trace_dir is not None:
        _print_trace_report(Path(options.trace_dir) / MERGED_TRACE_NAME, args)
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    """The scheme × scenario sweep: a percentile table per cell."""
    import json as json_module

    schemes = tuple(
        s.strip() for s in args.schemes.split(",") if s.strip()
    )
    if not schemes:
        raise SystemExit("--schemes must name at least one scheme")
    packs = None
    if args.packs is not None:
        names = [p.strip() for p in args.packs.split(",") if p.strip()]
        if not names:
            raise SystemExit("--packs must name at least one pack")
        try:
            packs = tuple(parse_scenario(name) for name in names)
        except (ScenarioFormatError, OSError) as error:
            raise SystemExit(f"--packs: {error}")
    if args.replicas < 1:
        raise SystemExit("--replicas must be >= 1")
    options, cache, stream_cache = _runner_setup(args)
    try:
        report = run_fleet(
            schemes,
            packs,
            sequence=args.sequence,
            n_frames=args.frames,
            replicas=args.replicas,
            base_seed=args.seed,
            config=_config(args),
            options=options,
        )
    except RuntimeError as error:
        print(str(error), file=sys.stderr)
        return 1
    print(
        format_table(
            FLEET_COLUMNS,
            report.rows(),
            title=(
                f"fleet: {args.sequence}, {args.frames} frames, "
                f"{args.replicas} replica(s), digest "
                f"{report.digest[:12]}"
            ),
        )
    )
    if args.json is not None:
        path = Path(args.json)
        path.write_text(
            json_module.dumps(report.to_json(), indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"report written to {path}", file=sys.stderr)
    return 0


def _cmd_sigma(args: argparse.Namespace) -> int:
    from repro.codec.encoder import Encoder
    from repro.codec.types import CodecConfig
    from repro.core.instrumentation import (
        InstrumentedPBPAIRStrategy,
        sigma_heatmap,
    )
    from repro.core.pbpair import PBPAIRConfig

    video = _sequence(args)
    strategy = InstrumentedPBPAIRStrategy(
        PBPAIRConfig(intra_th=args.intra_th, plr=args.plr)
    )
    Encoder(CodecConfig(), strategy).encode_sequence(video)
    step = max(len(video) // 4, 1)
    print(
        f"PBPAIR sigma heatmaps, {video.name}, Intra_Th={args.intra_th}, "
        f"PLR={args.plr:.0%} ('@'=1.0 ' '=0.0 'R'=refreshed)"
    )
    for snapshot in strategy.trace.snapshots[::step]:
        print(
            f"\nframe {snapshot.frame_index:3d}  "
            f"mean={snapshot.sigma_after.mean():.3f} "
            f"refreshes={int(snapshot.intra_mask.sum())}"
        )
        print(sigma_heatmap(snapshot.sigma_after, mark=snapshot.intra_mask))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    try:
        trace = load_trace(Path(args.trace_file))
    except FileNotFoundError:
        raise SystemExit(f"no such trace file: {args.trace_file}")
    except IsADirectoryError:
        raise SystemExit(
            f"{args.trace_file} is a directory, not a trace file "
            f"(did you mean {Path(args.trace_file) / MERGED_TRACE_NAME}?)"
        )
    except TraceFormatError as error:
        raise SystemExit(f"not a trace file: {args.trace_file}: {error}")
    if not trace.spans and not trace.events:
        raise SystemExit(
            f"trace file {args.trace_file} is empty (no spans or events); "
            "was the run traced with --trace?"
        )
    print(trace_summary(trace, DEVICE_PROFILES[args.device]))
    return 0


def _client(args: argparse.Namespace):
    from repro.service import ServiceClient

    return ServiceClient(args.url)


def _service_error(error: Exception) -> "SystemExit":
    return SystemExit(f"service error: {error}")


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig, serve

    options = _runner_options(args)
    try:
        config = ServiceConfig(
            queue_dir=args.queue_dir,
            host=args.host,
            port=args.port,
            runner=options,
            service_workers=args.service_workers,
            batch_size=args.batch_size,
            max_pending=args.max_pending,
            lease_s=args.lease,
            max_fails=args.max_fails,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    print(
        f"repro service: queue={config.queue_dir} "
        f"listening on http://{config.host}:{config.port or '<ephemeral>'}",
        file=sys.stderr,
    )
    try:
        manifest = serve(config)
    except KeyboardInterrupt:
        print("interrupted; queue state is durable — rerun "
              "`repro serve` with the same --queue-dir to resume",
              file=sys.stderr)
        return 130
    except OSError as error:
        raise SystemExit(f"cannot listen on {config.host}:{config.port}: "
                         f"{error}")
    counts = ", ".join(
        f"{state}={n}" for state, n in sorted(manifest.counts.items())
    ) or "no jobs"
    print(f"service drained: {counts}", file=sys.stderr)
    print(f"manifest written to {config.resolved_manifest_path}",
          file=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import JobSubmit, ServiceClientError

    if args.count < 1:
        raise SystemExit("--count must be >= 1")
    _sequence(args)  # validates --frames early, before touching the daemon
    config = _config(args)
    pbpair_kwargs = (
        {"intra_th": args.intra_th}
        if args.scheme.upper().startswith("PBPAIR")
        else {}
    )
    faults = _fault_plan(args)
    rate = _rate_config(args)
    scenario = _scenario_pack(args)
    submits = [
        JobSubmit(
            spec=JobSpec(
                scheme=args.scheme,
                plr=args.plr,
                channel_seed=args.seed + i,
                sequence=args.sequence,
                n_frames=args.frames,
                config=config,
                pbpair_kwargs=pbpair_kwargs,
                faults=faults,
                rate=rate,
                scenario=scenario,
            ),
            priority=args.priority,
            session_class=args.session_class,
        )
        for i in range(args.count)
    ]
    client = _client(args)
    try:
        job_ids = client.submit(submits)
        for job_id in job_ids:
            print(job_id)
        if args.wait:
            done = client.wait(job_ids, timeout=args.wait_timeout)
            states = sorted(s.state for s in done.values())
            print(
                f"{len(done)} session(s) finished: "
                + ", ".join(
                    f"{state}={states.count(state)}"
                    for state in dict.fromkeys(states)
                ),
                file=sys.stderr,
            )
            if any(not s.ok for s in done.values()):
                return 1
    except (ServiceClientError, TimeoutError) as error:
        raise _service_error(error)
    return 0


def _format_status(status) -> str:
    latency = (
        f"{status.latency_s:.2f}s" if status.latency_s is not None else "-"
    )
    error = f"  error: {status.error}" if status.error else ""
    return (
        f"{status.job_id}  {status.state:<11} "
        f"class={status.session_class} priority={status.priority} "
        f"attempts={status.attempts} latency={latency}{error}"
    )


def _summary_lines(summary) -> list[str]:
    lines = []
    counts = ", ".join(
        f"{state}={n}" for state, n in sorted(summary.counts.items())
    ) or "no jobs"
    lines.append(
        f"sessions: {summary.sessions} ({counts}); "
        f"queue depth {summary.queue_depth}"
    )
    for cls in summary.classes:
        lat = cls.latency_s or {}
        psnr = cls.psnr_db or {}

        def _fmt(values, unit, key):
            value = values.get(key)
            if value is None or value != value:  # NaN-safe
                return "-"
            return f"{value:.2f}{unit}"

        lines.append(
            f"  {cls.session_class}: {cls.sessions} sessions "
            f"(ok={cls.ok} cached={cls.cached} failed={cls.failed} "
            f"quarantined={cls.quarantined}) "
            f"latency p50/p95/p99 {_fmt(lat, 's', 'p50')}/"
            f"{_fmt(lat, 's', 'p95')}/{_fmt(lat, 's', 'p99')} "
            f"PSNR p50/p95/p99 {_fmt(psnr, 'dB', 'p50')}/"
            f"{_fmt(psnr, 'dB', 'p95')}/{_fmt(psnr, 'dB', 'p99')}"
        )
    return lines


def _journal_statuses(path: Path) -> list:
    """Reconstruct the latest per-job state from a queue journal file.

    Exits with a clear message on a missing, empty, or truncated
    journal — the offline mirror of the daemon's ``GET /v1/jobs``.
    """
    from repro.service import JOB_STATES

    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise SystemExit(f"no such journal file: {path}")
    except IsADirectoryError:
        raise SystemExit(
            f"{path} is a directory; point --journal at the queue's "
            "journal.jsonl file"
        )
    if not text.strip():
        raise SystemExit(
            f"journal file {path} is empty; has the daemon accepted "
            "any jobs yet?"
        )
    import json as _json

    latest: dict[str, dict] = {}
    for index, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = _json.loads(line)
        except _json.JSONDecodeError as error:
            if index == len(text.splitlines()):
                # A torn final line happens when the daemon dies
                # mid-append; everything before it is still good.
                print(
                    f"warning: ignoring truncated final journal line "
                    f"{index}",
                    file=sys.stderr,
                )
                continue
            raise SystemExit(
                f"not a journal file: {path}: bad JSON on line "
                f"{index}: {error}"
            )
        if record.get("type") == "header":
            continue
        if record.get("type") != "event" or "job_id" not in record:
            raise SystemExit(
                f"not a journal file: {path}: line {index} is not a "
                "journal event"
            )
        if record.get("state") not in JOB_STATES:
            raise SystemExit(
                f"journal file {path} line {index} has unknown state "
                f"{record.get('state')!r}"
            )
        latest[record["job_id"]] = record
    if not latest:
        raise SystemExit(
            f"journal file {path} holds no job events; has the daemon "
            "accepted any jobs yet?"
        )
    return list(latest.values())


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service import ServiceClientError

    if args.journal is not None:
        events = _journal_statuses(Path(args.journal))
        if args.job_id:
            events = [e for e in events if e["job_id"] == args.job_id]
            if not events:
                raise SystemExit(f"no such job in journal: {args.job_id}")
        by_state: dict[str, int] = {}
        for event in events:
            by_state[event["state"]] = by_state.get(event["state"], 0) + 1
        for event in sorted(events, key=lambda e: e.get("ts", 0.0)):
            print(
                f"{event['job_id']}  {event['state']:<11} "
                f"class={event.get('session_class', '?')} "
                f"priority={event.get('priority', 0)} "
                f"attempts={event.get('attempts', 0)}"
            )
        counts = ", ".join(
            f"{state}={n}" for state, n in sorted(by_state.items())
        )
        print(f"{len(events)} job(s): {counts}", file=sys.stderr)
        return 0
    client = _client(args)
    try:
        if args.job_id:
            print(_format_status(client.status(args.job_id)))
        else:
            for line in _summary_lines(client.summary()):
                print(line)
    except ServiceClientError as error:
        raise _service_error(error)
    return 0


def _cmd_drain(args: argparse.Namespace) -> int:
    import time as _time

    from repro.service import ServiceClientError

    client = _client(args)
    try:
        health = client.shutdown() if args.shutdown else client.drain()
    except ServiceClientError as error:
        raise _service_error(error)
    print(
        f"draining: {health['pending']} pending, "
        f"{health['running']} running",
        file=sys.stderr,
    )
    if not args.wait:
        return 0
    # A drained daemon exits and writes its manifest, so losing the
    # connection mid-poll is the success signal, not an error.
    deadline = _time.monotonic() + args.wait_timeout
    while True:
        _time.sleep(0.2)
        try:
            health = client.health()
        except ServiceClientError as error:
            if error.status == 0:
                print("daemon drained and exited", file=sys.stderr)
                return 0
            raise _service_error(error)
        if health.get("drained"):
            try:
                for line in _summary_lines(client.summary()):
                    print(line)
            except ServiceClientError:
                print("daemon drained and exited", file=sys.stderr)
            return 0
        if _time.monotonic() > deadline:
            raise SystemExit(
                f"queue not drained after {args.wait_timeout:g}s "
                f"({health['pending']} pending, "
                f"{health['running']} running)"
            )


def _cmd_info(args: argparse.Namespace) -> int:
    print("schemes   :", ", ".join(sorted(STRATEGY_BUILDERS)))
    print("sequences :", ", ".join(sorted(SEQUENCE_GENERATORS)))
    print(
        "devices   :",
        ", ".join(
            f"{key} ({profile.name})"
            for key, profile in sorted(DEVICE_PROFILES.items())
        ),
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PBPAIR (ICDCS 2005) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sim = commands.add_parser("simulate", help="run one scheme end to end")
    _add_common(sim)
    sim.add_argument(
        "--scheme",
        default="PBPAIR",
        help="NO, GOP-N, AIR-N, PGOP-N or PBPAIR (default: PBPAIR)",
    )
    sim.add_argument(
        "--intra-th",
        type=float,
        default=0.92,
        help="PBPAIR's Intra_Th (default: 0.92)",
    )
    _add_fault_options(sim)
    _add_rate_options(sim)
    _add_trace_options(sim)
    _add_scenario_option(sim)
    sim.set_defaults(handler=_cmd_simulate)

    compare = commands.add_parser(
        "compare", help="Figure-5 style scheme comparison"
    )
    _add_common(compare)
    _add_runner_options(compare)
    _add_rate_options(compare)
    _add_scenario_option(compare)
    compare.set_defaults(handler=_cmd_compare)

    sweep = commands.add_parser(
        "sweep", help="Section-4.3 operating-point sweep"
    )
    _add_common(sweep)
    _add_runner_options(sweep)
    _add_rate_options(sweep)
    _add_scenario_option(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    fleet = commands.add_parser(
        "fleet", help="scheme x scenario-pack sweep with percentile table"
    )
    _add_common(fleet)
    _add_runner_options(fleet)
    fleet.add_argument(
        "--schemes",
        default=",".join(FLEET_SCHEMES),
        help="comma-separated scheme list "
        f"(default: {','.join(FLEET_SCHEMES)})",
    )
    fleet.add_argument(
        "--packs",
        default=None,
        help="comma-separated pack names/paths (default: every shipped "
        f"pack: {', '.join(available_packs())})",
    )
    fleet.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="channel seeds per cell (default: 2)",
    )
    fleet.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the full fleet report as JSON",
    )
    fleet.set_defaults(handler=_cmd_fleet)

    sigma = commands.add_parser(
        "sigma", help="print PBPAIR's correctness-matrix heatmaps"
    )
    _add_common(sigma)
    sigma.add_argument(
        "--intra-th",
        type=float,
        default=0.9,
        help="PBPAIR's Intra_Th (default: 0.9)",
    )
    sigma.set_defaults(handler=_cmd_sigma)

    trace = commands.add_parser(
        "trace", help="render a trace file's per-stage breakdown"
    )
    trace.add_argument(
        "trace_file", metavar="JSONL", help="trace file from a --trace run"
    )
    trace.add_argument(
        "--device",
        choices=sorted(DEVICE_PROFILES),
        default="ipaq",
        help="energy profile for the energy column (default: ipaq)",
    )
    trace.set_defaults(handler=_cmd_trace)

    info = commands.add_parser("info", help="list schemes/sequences/devices")
    info.set_defaults(handler=_cmd_info)

    serve = commands.add_parser(
        "serve", help="run the long-lived encode daemon (HTTP+JSONL API)"
    )
    serve.add_argument(
        "--queue-dir",
        default=".repro_service",
        help="persistent job-queue directory; reopen the same directory "
        "to resume an interrupted fleet (default: .repro_service)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="listen address (default: local)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=SERVICE_DEFAULT_PORT,
        help=f"listen port, 0 = ephemeral (default: {SERVICE_DEFAULT_PORT})",
    )
    serve.add_argument(
        "--service-workers",
        type=int,
        default=1,
        help="concurrent dispatcher tasks claiming job batches "
        "(default: 1)",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=8,
        help="jobs claimed per dispatch; batches feed the chunked grid "
        "pool (default: 8)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="queue backlog bound; beyond it submissions get HTTP 429 "
        "(default: 1024)",
    )
    serve.add_argument(
        "--lease",
        type=float,
        default=30.0,
        metavar="S",
        help="claim lease seconds; a silent worker loses its jobs to "
        "the reaper (default: 30)",
    )
    serve.add_argument(
        "--max-fails",
        type=int,
        default=3,
        help="failures before a job is quarantined (default: 3)",
    )
    _add_runner_options(serve)
    serve.set_defaults(handler=_cmd_serve)

    submit = commands.add_parser(
        "submit", help="enqueue sessions on a running daemon"
    )
    _add_common(submit)
    _add_fault_options(submit)
    _add_rate_options(submit)
    _add_scenario_option(submit)
    submit.add_argument(
        "--url",
        default=f"http://127.0.0.1:{SERVICE_DEFAULT_PORT}",
        help="daemon base URL (default: the local default port)",
    )
    submit.add_argument(
        "--scheme",
        default="PBPAIR",
        help="NO, GOP-N, AIR-N, PGOP-N or PBPAIR (default: PBPAIR)",
    )
    submit.add_argument(
        "--intra-th",
        type=float,
        default=0.92,
        help="PBPAIR's Intra_Th (default: 0.92)",
    )
    submit.add_argument(
        "--count",
        type=int,
        default=1,
        help="sessions to enqueue; seeds run --seed..--seed+N-1 "
        "(default: 1)",
    )
    submit.add_argument(
        "--priority",
        type=int,
        default=0,
        help="claim priority; higher runs first (default: 0)",
    )
    submit.add_argument(
        "--session-class",
        default="standard",
        metavar="NAME",
        help="fleet-reporting label percentiles group by "
        "(default: standard)",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="poll until every submitted session is terminal "
        "(exit 1 if any failed)",
    )
    submit.add_argument(
        "--wait-timeout",
        type=float,
        default=600.0,
        metavar="S",
        help="--wait deadline in seconds (default: 600)",
    )
    submit.set_defaults(handler=_cmd_submit)

    status = commands.add_parser(
        "status",
        help="fleet summary or one job's status from a running daemon",
    )
    status.add_argument(
        "job_id",
        nargs="?",
        default=None,
        help="job id to inspect (omit for the fleet summary)",
    )
    status.add_argument(
        "--url",
        default=f"http://127.0.0.1:{SERVICE_DEFAULT_PORT}",
        help="daemon base URL (default: the local default port)",
    )
    status.add_argument(
        "--journal",
        default=None,
        metavar="JSONL",
        help="read job states offline from a queue journal file instead "
        "of a live daemon",
    )
    status.set_defaults(handler=_cmd_status)

    drain = commands.add_parser(
        "drain", help="stop a daemon accepting jobs and finish the backlog"
    )
    drain.add_argument(
        "--url",
        default=f"http://127.0.0.1:{SERVICE_DEFAULT_PORT}",
        help="daemon base URL (default: the local default port)",
    )
    drain.add_argument(
        "--shutdown",
        action="store_true",
        help="stop immediately after writing the manifest instead of "
        "finishing the backlog",
    )
    drain.add_argument(
        "--wait",
        action="store_true",
        help="poll until the queue is drained and print the final summary",
    )
    drain.add_argument(
        "--wait-timeout",
        type=float,
        default=600.0,
        metavar="S",
        help="--wait deadline in seconds (default: 600)",
    )
    drain.set_defaults(handler=_cmd_drain)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ValueError as error:
        parser.error(str(error))
        return 2  # unreachable; parser.error raises SystemExit
