"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate`` — run one scheme over one sequence and a lossy channel,
  print the run summary.
* ``compare`` — the paper's Figure-5 style comparison (all five
  schemes, PBPAIR size-matched to PGOP-3).
* ``sweep`` — the Section-4.3 (Intra_Th x PLR) operating-point table.
* ``sigma`` — encode with PBPAIR and print the correctness matrix as
  ASCII heatmaps (the paper's ``C^k``, live).
* ``info`` — list available schemes, sequences and device profiles.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.energy.profiles import DEVICE_PROFILES
from repro.network.loss import UniformLoss
from repro.resilience.registry import STRATEGY_BUILDERS, build_strategy
from repro.sim.experiment import match_intra_th_to_size, total_encoded_bytes
from repro.sim.pipeline import SimulationConfig, simulate
from repro.sim.report import format_table
from repro.sim.runner import (
    DEFAULT_CACHE_DIR,
    JobFailure,
    JobSpec,
    ResultCache,
    run_grid,
)
from repro.video.synthetic import SEQUENCE_GENERATORS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sequence",
        choices=sorted(SEQUENCE_GENERATORS),
        default="foreman",
        help="synthetic test clip (default: foreman)",
    )
    parser.add_argument(
        "--frames", type=int, default=90, help="clip length (default: 90)"
    )
    parser.add_argument(
        "--plr", type=float, default=0.1, help="packet loss rate (default: 0.1)"
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="channel seed (default: 1)"
    )
    parser.add_argument(
        "--device",
        choices=sorted(DEVICE_PROFILES),
        default="ipaq",
        help="energy profile (default: ipaq)",
    )


def _add_runner_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the experiment grid; 0 = all cores "
        "(default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell instead of using the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )


def _runner_setup(args: argparse.Namespace):
    """(max_workers, cache) from the runner options."""
    if args.jobs < 0:
        raise SystemExit("--jobs must be >= 0")
    max_workers = None if args.jobs == 0 else args.jobs
    if args.no_cache:
        return max_workers, None
    try:
        cache = ResultCache(args.cache_dir)
    except (FileExistsError, NotADirectoryError):
        raise SystemExit(
            f"--cache-dir {args.cache_dir!r} exists and is not a directory"
        )
    return max_workers, cache


def _grid_results(jobs, max_workers, cache):
    """Run a grid and unwrap it, aborting loudly on any failed cell."""
    outcomes = run_grid(jobs, max_workers=max_workers, cache=cache)
    failures = [o for o in outcomes if isinstance(o, JobFailure)]
    for failure in failures:
        print(
            f"job {failure.spec.scheme} (PLR={failure.spec.plr}, "
            f"seed={failure.spec.channel_seed}) failed: "
            f"{failure.error_type}: {failure.message}",
            file=sys.stderr,
        )
        if failure.traceback_text:
            print(failure.traceback_text, file=sys.stderr)
    if failures:
        raise SystemExit(1)
    return [o.result for o in outcomes]


def _config(args: argparse.Namespace) -> SimulationConfig:
    return SimulationConfig(device=DEVICE_PROFILES[args.device])


def _sequence(args: argparse.Namespace):
    if args.frames < 1:
        raise SystemExit("--frames must be >= 1")
    return SEQUENCE_GENERATORS[args.sequence](args.frames)


def _cmd_simulate(args: argparse.Namespace) -> int:
    video = _sequence(args)
    if args.scheme.upper().startswith("PBPAIR"):
        strategy = build_strategy(
            "PBPAIR", intra_th=args.intra_th, plr=args.plr
        )
    else:
        strategy = build_strategy(args.scheme)
    result = simulate(
        video,
        strategy,
        loss_model=UniformLoss(plr=args.plr, seed=args.seed),
        config=_config(args),
    )
    print(f"sequence         : {video.name} ({result.n_frames} frames)")
    print(f"scheme           : {result.strategy_name}")
    print(f"delivered PSNR   : {result.average_psnr_decoder:.2f} dB")
    print(f"bad pixels       : {result.total_bad_pixels:,}")
    print(f"encoded size     : {result.total_bytes / 1024:.1f} KB")
    print(f"intra macroblocks: {100 * result.intra_fraction:.1f}%")
    print(f"encoding energy  : {result.energy_joules:.3f} J "
          f"({result.energy.device})")
    print(f"packets lost     : {len(result.channel_log.lost_packets)}"
          f"/{result.channel_log.sent}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    video = _sequence(args)
    config = _config(args)
    max_workers, cache = _runner_setup(args)
    print("Calibrating PBPAIR's Intra_Th to PGOP-3's size ...",
          file=sys.stderr)
    target = total_encoded_bytes(video, build_strategy("PGOP-3"), config)
    intra_th = match_intra_th_to_size(
        video, target, plr=args.plr, config=config, max_iterations=8,
        cache=cache,
    )
    schemes = ("NO", "PBPAIR", "PGOP-3", "GOP-3", "AIR-24")
    jobs = [
        JobSpec(
            scheme=spec,
            plr=args.plr,
            channel_seed=args.seed,
            sequence=args.sequence,
            n_frames=args.frames,
            config=config,
            pbpair_kwargs={"intra_th": intra_th},
        )
        for spec in schemes
    ]
    rows = []
    for spec, result in zip(schemes, _grid_results(jobs, max_workers, cache)):
        rows.append(
            [
                spec,
                result.average_psnr_decoder,
                result.total_bad_pixels / 1e6,
                result.total_bytes / 1024,
                result.energy_joules,
                100 * result.intra_fraction,
            ]
        )
    print(
        format_table(
            ["scheme", "PSNR dB", "bad px M", "size KB", "energy J", "intra %"],
            rows,
            title=(
                f"{video.name}, {args.frames} frames, PLR={args.plr:.0%}, "
                f"PBPAIR Intra_Th={intra_th:.3f}"
            ),
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    video = _sequence(args)
    config = _config(args)
    max_workers, cache = _runner_setup(args)
    thresholds = (0.0, 0.5, 0.8, 0.9, 0.95, 1.0)
    jobs = [
        JobSpec(
            scheme="PBPAIR",
            plr=args.plr,
            channel_seed=args.seed,
            sequence=args.sequence,
            n_frames=args.frames,
            config=config,
            pbpair_kwargs={"intra_th": th},
        )
        for th in thresholds
    ]
    rows = []
    for th, result in zip(
        thresholds, _grid_results(jobs, max_workers, cache)
    ):
        rows.append(
            [
                th,
                100 * result.intra_fraction,
                result.total_bytes / 1024,
                result.energy_joules,
                result.average_psnr_decoder,
                result.total_bad_pixels / 1e6,
            ]
        )
    print(
        format_table(
            ["Intra_Th", "intra %", "size KB", "energy J", "PSNR dB",
             "bad px M"],
            rows,
            title=(
                f"PBPAIR operating points: {video.name}, "
                f"{args.frames} frames, PLR={args.plr:.0%}"
            ),
        )
    )
    return 0


def _cmd_sigma(args: argparse.Namespace) -> int:
    from repro.codec.encoder import Encoder
    from repro.codec.types import CodecConfig
    from repro.core.instrumentation import (
        InstrumentedPBPAIRStrategy,
        sigma_heatmap,
    )
    from repro.core.pbpair import PBPAIRConfig

    video = _sequence(args)
    strategy = InstrumentedPBPAIRStrategy(
        PBPAIRConfig(intra_th=args.intra_th, plr=args.plr)
    )
    Encoder(CodecConfig(), strategy).encode_sequence(video)
    step = max(len(video) // 4, 1)
    print(
        f"PBPAIR sigma heatmaps, {video.name}, Intra_Th={args.intra_th}, "
        f"PLR={args.plr:.0%} ('@'=1.0 ' '=0.0 'R'=refreshed)"
    )
    for snapshot in strategy.trace.snapshots[::step]:
        print(
            f"\nframe {snapshot.frame_index:3d}  "
            f"mean={snapshot.sigma_after.mean():.3f} "
            f"refreshes={int(snapshot.intra_mask.sum())}"
        )
        print(sigma_heatmap(snapshot.sigma_after, mark=snapshot.intra_mask))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    print("schemes   :", ", ".join(sorted(STRATEGY_BUILDERS)))
    print("sequences :", ", ".join(sorted(SEQUENCE_GENERATORS)))
    print(
        "devices   :",
        ", ".join(
            f"{key} ({profile.name})"
            for key, profile in sorted(DEVICE_PROFILES.items())
        ),
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PBPAIR (ICDCS 2005) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sim = commands.add_parser("simulate", help="run one scheme end to end")
    _add_common(sim)
    sim.add_argument(
        "--scheme",
        default="PBPAIR",
        help="NO, GOP-N, AIR-N, PGOP-N or PBPAIR (default: PBPAIR)",
    )
    sim.add_argument(
        "--intra-th",
        type=float,
        default=0.92,
        help="PBPAIR's Intra_Th (default: 0.92)",
    )
    sim.set_defaults(handler=_cmd_simulate)

    compare = commands.add_parser(
        "compare", help="Figure-5 style scheme comparison"
    )
    _add_common(compare)
    _add_runner_options(compare)
    compare.set_defaults(handler=_cmd_compare)

    sweep = commands.add_parser(
        "sweep", help="Section-4.3 operating-point sweep"
    )
    _add_common(sweep)
    _add_runner_options(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    sigma = commands.add_parser(
        "sigma", help="print PBPAIR's correctness-matrix heatmaps"
    )
    _add_common(sigma)
    sigma.add_argument(
        "--intra-th",
        type=float,
        default=0.9,
        help="PBPAIR's Intra_Th (default: 0.9)",
    )
    sigma.set_defaults(handler=_cmd_sigma)

    info = commands.add_parser("info", help="list schemes/sequences/devices")
    info.set_defaults(handler=_cmd_info)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ValueError as error:
        parser.error(str(error))
        return 2  # unreachable; parser.error raises SystemExit
