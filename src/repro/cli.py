"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate`` — run one scheme over one sequence and a lossy channel,
  print the run summary.
* ``compare`` — the paper's Figure-5 style comparison (all five
  schemes, PBPAIR size-matched to PGOP-3).
* ``sweep`` — the Section-4.3 (Intra_Th x PLR) operating-point table.
* ``sigma`` — encode with PBPAIR and print the correctness matrix as
  ASCII heatmaps (the paper's ``C^k``, live).
* ``trace`` — render the per-stage time/energy breakdown of a trace
  file written by a ``--trace`` run.
* ``info`` — list available schemes, sequences and device profiles.

``simulate``, ``compare`` and ``sweep`` accept ``--trace`` (and
``--trace-dir DIR``, which implies it): the run executes under a
:mod:`repro.obs` tracer, leaves ``trace.jsonl`` in the trace directory,
and prints the same per-stage breakdown ``repro trace`` would.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.energy.profiles import DEVICE_PROFILES
from repro.faults import parse_fault_plan
from repro.network.loss import UniformLoss
from repro.obs import (
    MERGED_TRACE_NAME,
    TraceFormatError,
    Tracer,
    load_trace,
    trace_summary,
    use_tracer,
    write_trace,
)
from repro.resilience.registry import STRATEGY_BUILDERS, build_strategy
from repro.sim.experiment import match_intra_th_to_size, total_encoded_bytes
from repro.sim.pipeline import SimulationConfig, simulate
from repro.sim.report import format_table
from repro.sim.runner import (
    DEFAULT_CACHE_DIR,
    EncodedStreamCache,
    JobFailure,
    JobResult,
    JobSpec,
    ResultCache,
    RetryPolicy,
    run_grid,
)
from repro.video.synthetic import SEQUENCE_GENERATORS

#: Where ``--trace`` runs leave their JSONL files unless ``--trace-dir``
#: points elsewhere.
DEFAULT_TRACE_DIR = ".repro_trace"


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sequence",
        choices=sorted(SEQUENCE_GENERATORS),
        default="foreman",
        help="synthetic test clip (default: foreman)",
    )
    parser.add_argument(
        "--frames", type=int, default=90, help="clip length (default: 90)"
    )
    parser.add_argument(
        "--plr", type=float, default=0.1, help="packet loss rate (default: 0.1)"
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="channel seed (default: 1)"
    )
    parser.add_argument(
        "--device",
        choices=sorted(DEVICE_PROFILES),
        default="ipaq",
        help="energy profile (default: ipaq)",
    )


def _add_runner_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the experiment grid; 0 = all cores "
        "(default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell instead of using the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-stream-cache",
        action="store_true",
        help="disable encoded-stream sharing: encode every grid cell "
        "from scratch instead of replaying one stream per operating "
        "point (results are identical either way)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-run a failed grid cell up to N extra times with "
        "exponential backoff (default: 0, no retries)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-job wall-clock limit in seconds (parallel runs only)",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help="write a JSON manifest recording every job's outcome, and "
        "degrade gracefully on failures instead of aborting",
    )
    _add_fault_options(parser)
    _add_trace_options(parser)


def _add_fault_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="inject a deterministic fault plan: a compact "
        "'kind[:prob],...' list (e.g. 'truncate:0.3,worker_crash'), an "
        "inline JSON object, or a JSON file path",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault plan's RNG streams (default: 0)",
    )


def _fault_plan(args: argparse.Namespace):
    """The parsed --faults plan, or None when no faults are requested."""
    if args.faults is None:
        return None
    try:
        return parse_fault_plan(args.faults, seed=args.fault_seed)
    except (ValueError, OSError) as error:
        raise SystemExit(f"bad --faults value: {error}")


def _add_trace_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="trace the run per pipeline stage and print the breakdown",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="write trace JSONL files to DIR (implies --trace; "
        f"default: {DEFAULT_TRACE_DIR})",
    )


def _trace_dir(args: argparse.Namespace) -> Optional[Path]:
    """The trace output directory, or None when tracing is off."""
    if args.trace_dir is not None:
        return Path(args.trace_dir)
    return Path(DEFAULT_TRACE_DIR) if args.trace else None


def _print_trace_report(trace_file: Optional[Path], args) -> None:
    if trace_file is None or not trace_file.exists():
        print("no trace written (all grid cells were cache hits?)",
              file=sys.stderr)
        return
    print()
    print(trace_summary(load_trace(trace_file), DEVICE_PROFILES[args.device]))
    print(f"trace written to {trace_file}")


def _runner_setup(args: argparse.Namespace):
    """(max_workers, cache, trace_dir, stream_cache) from runner options."""
    if args.jobs < 0:
        raise SystemExit("--jobs must be >= 0")
    max_workers = None if args.jobs == 0 else args.jobs
    trace_dir = _trace_dir(args)
    if args.no_cache:
        cache = None
    else:
        try:
            cache = ResultCache(args.cache_dir)
        except (FileExistsError, NotADirectoryError):
            raise SystemExit(
                f"--cache-dir {args.cache_dir!r} exists and is not a directory"
            )
    if args.no_stream_cache:
        stream_cache = None
    else:
        # Streams live beside the result cache so one --cache-dir wipes
        # both; memory-only when --no-cache (still shares within a run).
        stream_cache = EncodedStreamCache(
            cache.directory / "streams" if cache is not None else None
        )
    return max_workers, cache, trace_dir, stream_cache


def _grid_results(args, jobs, max_workers, cache, trace_dir=None,
                  stream_cache=None):
    """Run a grid and unwrap it.

    Without ``--manifest`` any failed cell aborts the command with exit
    status 1 (after reporting every failure).  With ``--manifest`` the
    run completes partially instead: every outcome lands in the
    manifest file, failures are reported on stderr, and failed cells
    come back as ``None`` so callers can render the surviving rows.
    """
    if args.retries < 0:
        raise SystemExit("--retries must be >= 0")
    retry = (
        RetryPolicy(max_attempts=args.retries + 1) if args.retries else None
    )
    outcomes = run_grid(
        jobs,
        max_workers=max_workers,
        cache=cache,
        timeout=args.job_timeout,
        trace_dir=trace_dir,
        retry=retry,
        faults=_fault_plan(args),
        manifest_path=args.manifest,
        stream_cache=stream_cache,
        share_streams=not args.no_stream_cache,
    )
    failures = [o for o in outcomes if isinstance(o, JobFailure)]
    for failure in failures:
        quarantined = " [quarantined]" if failure.quarantined else ""
        print(
            f"job {failure.spec.scheme} (PLR={failure.spec.plr}, "
            f"seed={failure.spec.channel_seed}) failed after "
            f"{failure.attempts} attempt(s){quarantined}: "
            f"{failure.error_type}: {failure.message}",
            file=sys.stderr,
        )
        if failure.traceback_text and args.manifest is None:
            print(failure.traceback_text, file=sys.stderr)
    if args.manifest is not None:
        print(f"manifest written to {args.manifest}", file=sys.stderr)
        return [
            o.result if isinstance(o, JobResult) else None for o in outcomes
        ]
    if failures:
        raise SystemExit(1)
    return [o.result for o in outcomes]


def _config(args: argparse.Namespace) -> SimulationConfig:
    return SimulationConfig(device=DEVICE_PROFILES[args.device])


def _sequence(args: argparse.Namespace):
    if args.frames < 1:
        raise SystemExit("--frames must be >= 1")
    return SEQUENCE_GENERATORS[args.sequence](args.frames)


def _cmd_simulate(args: argparse.Namespace) -> int:
    video = _sequence(args)
    if args.scheme.upper().startswith("PBPAIR"):
        strategy = build_strategy(
            "PBPAIR", intra_th=args.intra_th, plr=args.plr
        )
    else:
        strategy = build_strategy(args.scheme)
    faults = _fault_plan(args)
    trace_dir = _trace_dir(args)
    trace_file: Optional[Path] = None
    if trace_dir is not None:
        tracer = Tracer(trace_id=f"{args.scheme} {video.name}")
        with use_tracer(tracer):
            result = simulate(
                video,
                strategy,
                loss_model=UniformLoss(plr=args.plr, seed=args.seed),
                config=_config(args),
                faults=faults,
            )
        trace_file = write_trace(trace_dir / MERGED_TRACE_NAME, tracer)
    else:
        result = simulate(
            video,
            strategy,
            loss_model=UniformLoss(plr=args.plr, seed=args.seed),
            config=_config(args),
            faults=faults,
        )
    print(f"sequence         : {video.name} ({result.n_frames} frames)")
    print(f"scheme           : {result.strategy_name}")
    print(f"delivered PSNR   : {result.average_psnr_decoder:.2f} dB")
    print(f"bad pixels       : {result.total_bad_pixels:,}")
    print(f"encoded size     : {result.total_bytes / 1024:.1f} KB")
    print(f"intra macroblocks: {100 * result.intra_fraction:.1f}%")
    print(f"encoding energy  : {result.energy_joules:.3f} J "
          f"({result.energy.device})")
    print(f"packets lost     : {len(result.channel_log.lost_packets)}"
          f"/{result.channel_log.sent}")
    if result.fault_events:
        by_kind: dict[str, int] = {}
        for event in result.fault_events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        rendered = " ".join(
            f"{kind}={count}" for kind, count in sorted(by_kind.items())
        )
        print(f"injected faults  : {len(result.fault_events)} ({rendered})")
        print(f"damaged fragments: {result.total_damaged_fragments}")
    if trace_file is not None:
        _print_trace_report(trace_file, args)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    video = _sequence(args)
    config = _config(args)
    max_workers, cache, trace_dir, stream_cache = _runner_setup(args)
    print("Calibrating PBPAIR's Intra_Th to PGOP-3's size ...",
          file=sys.stderr)
    target = total_encoded_bytes(video, build_strategy("PGOP-3"), config)
    intra_th = match_intra_th_to_size(
        video, target, plr=args.plr, config=config, max_iterations=8,
        cache=cache, stream_cache=stream_cache,
    )
    print(
        f"calibration: {intra_th.probes} probes, "
        f"{intra_th.unique_encodes} encodes "
        f"({intra_th.saved_encodes} served from cache)",
        file=sys.stderr,
    )
    schemes = ("NO", "PBPAIR", "PGOP-3", "GOP-3", "AIR-24")
    jobs = [
        JobSpec(
            scheme=spec,
            plr=args.plr,
            channel_seed=args.seed,
            sequence=args.sequence,
            n_frames=args.frames,
            config=config,
            pbpair_kwargs={"intra_th": intra_th},
        )
        for spec in schemes
    ]
    rows = []
    for spec, result in zip(
        schemes,
        _grid_results(args, jobs, max_workers, cache, trace_dir, stream_cache),
    ):
        if result is None:
            continue
        rows.append(
            [
                spec,
                result.average_psnr_decoder,
                result.total_bad_pixels / 1e6,
                result.total_bytes / 1024,
                result.energy_joules,
                100 * result.intra_fraction,
            ]
        )
    print(
        format_table(
            ["scheme", "PSNR dB", "bad px M", "size KB", "energy J", "intra %"],
            rows,
            title=(
                f"{video.name}, {args.frames} frames, PLR={args.plr:.0%}, "
                f"PBPAIR Intra_Th={intra_th:.3f}"
            ),
        )
    )
    if trace_dir is not None:
        _print_trace_report(trace_dir / MERGED_TRACE_NAME, args)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    video = _sequence(args)
    config = _config(args)
    max_workers, cache, trace_dir, stream_cache = _runner_setup(args)
    thresholds = (0.0, 0.5, 0.8, 0.9, 0.95, 1.0)
    jobs = [
        JobSpec(
            scheme="PBPAIR",
            plr=args.plr,
            channel_seed=args.seed,
            sequence=args.sequence,
            n_frames=args.frames,
            config=config,
            pbpair_kwargs={"intra_th": th},
        )
        for th in thresholds
    ]
    rows = []
    for th, result in zip(
        thresholds,
        _grid_results(args, jobs, max_workers, cache, trace_dir, stream_cache),
    ):
        if result is None:
            continue
        rows.append(
            [
                th,
                100 * result.intra_fraction,
                result.total_bytes / 1024,
                result.energy_joules,
                result.average_psnr_decoder,
                result.total_bad_pixels / 1e6,
            ]
        )
    print(
        format_table(
            ["Intra_Th", "intra %", "size KB", "energy J", "PSNR dB",
             "bad px M"],
            rows,
            title=(
                f"PBPAIR operating points: {video.name}, "
                f"{args.frames} frames, PLR={args.plr:.0%}"
            ),
        )
    )
    if trace_dir is not None:
        _print_trace_report(trace_dir / MERGED_TRACE_NAME, args)
    return 0


def _cmd_sigma(args: argparse.Namespace) -> int:
    from repro.codec.encoder import Encoder
    from repro.codec.types import CodecConfig
    from repro.core.instrumentation import (
        InstrumentedPBPAIRStrategy,
        sigma_heatmap,
    )
    from repro.core.pbpair import PBPAIRConfig

    video = _sequence(args)
    strategy = InstrumentedPBPAIRStrategy(
        PBPAIRConfig(intra_th=args.intra_th, plr=args.plr)
    )
    Encoder(CodecConfig(), strategy).encode_sequence(video)
    step = max(len(video) // 4, 1)
    print(
        f"PBPAIR sigma heatmaps, {video.name}, Intra_Th={args.intra_th}, "
        f"PLR={args.plr:.0%} ('@'=1.0 ' '=0.0 'R'=refreshed)"
    )
    for snapshot in strategy.trace.snapshots[::step]:
        print(
            f"\nframe {snapshot.frame_index:3d}  "
            f"mean={snapshot.sigma_after.mean():.3f} "
            f"refreshes={int(snapshot.intra_mask.sum())}"
        )
        print(sigma_heatmap(snapshot.sigma_after, mark=snapshot.intra_mask))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    try:
        trace = load_trace(Path(args.trace_file))
    except FileNotFoundError:
        raise SystemExit(f"no such trace file: {args.trace_file}")
    except TraceFormatError as error:
        raise SystemExit(f"not a trace file: {args.trace_file}: {error}")
    print(trace_summary(trace, DEVICE_PROFILES[args.device]))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    print("schemes   :", ", ".join(sorted(STRATEGY_BUILDERS)))
    print("sequences :", ", ".join(sorted(SEQUENCE_GENERATORS)))
    print(
        "devices   :",
        ", ".join(
            f"{key} ({profile.name})"
            for key, profile in sorted(DEVICE_PROFILES.items())
        ),
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PBPAIR (ICDCS 2005) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sim = commands.add_parser("simulate", help="run one scheme end to end")
    _add_common(sim)
    sim.add_argument(
        "--scheme",
        default="PBPAIR",
        help="NO, GOP-N, AIR-N, PGOP-N or PBPAIR (default: PBPAIR)",
    )
    sim.add_argument(
        "--intra-th",
        type=float,
        default=0.92,
        help="PBPAIR's Intra_Th (default: 0.92)",
    )
    _add_fault_options(sim)
    _add_trace_options(sim)
    sim.set_defaults(handler=_cmd_simulate)

    compare = commands.add_parser(
        "compare", help="Figure-5 style scheme comparison"
    )
    _add_common(compare)
    _add_runner_options(compare)
    compare.set_defaults(handler=_cmd_compare)

    sweep = commands.add_parser(
        "sweep", help="Section-4.3 operating-point sweep"
    )
    _add_common(sweep)
    _add_runner_options(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    sigma = commands.add_parser(
        "sigma", help="print PBPAIR's correctness-matrix heatmaps"
    )
    _add_common(sigma)
    sigma.add_argument(
        "--intra-th",
        type=float,
        default=0.9,
        help="PBPAIR's Intra_Th (default: 0.9)",
    )
    sigma.set_defaults(handler=_cmd_sigma)

    trace = commands.add_parser(
        "trace", help="render a trace file's per-stage breakdown"
    )
    trace.add_argument(
        "trace_file", metavar="JSONL", help="trace file from a --trace run"
    )
    trace.add_argument(
        "--device",
        choices=sorted(DEVICE_PROFILES),
        default="ipaq",
        help="energy profile for the energy column (default: ipaq)",
    )
    trace.set_defaults(handler=_cmd_trace)

    info = commands.add_parser("info", help="list schemes/sequences/devices")
    info.set_defaults(handler=_cmd_info)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ValueError as error:
        parser.error(str(error))
        return 2  # unreachable; parser.error raises SystemExit
