"""Peak signal-to-noise ratio."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error between two equally shaped frames."""
    if original.shape != reconstructed.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {reconstructed.shape}"
        )
    diff = original.astype(np.float64) - reconstructed.astype(np.float64)
    return float(np.mean(diff * diff))


def psnr(original: np.ndarray, reconstructed: np.ndarray, peak: float = 255.0) -> float:
    """PSNR in dB; ``inf`` for identical frames."""
    error = mse(original, reconstructed)
    if error == 0.0:
        return float("inf")
    return float(10.0 * np.log10(peak * peak / error))


def sequence_psnr(
    originals: Sequence[np.ndarray], reconstructions: Sequence[np.ndarray]
) -> list[float]:
    """Per-frame PSNR of a whole sequence."""
    if len(originals) != len(reconstructions):
        raise ValueError("sequences must have equal length")
    return [psnr(o, r) for o, r in zip(originals, reconstructions)]


def average_psnr(per_frame: Iterable[float], cap: float = 60.0) -> float:
    """Average per-frame PSNR, capping ``inf`` frames at ``cap`` dB.

    Lossless frames have infinite PSNR; capping (rather than dropping)
    keeps averages finite and comparable, matching common practice.
    """
    values = [min(v, cap) for v in per_frame]
    if not values:
        raise ValueError("no PSNR values to average")
    return float(np.mean(values))
