"""Structural similarity (SSIM) — the paper's future-work quality metric.

The paper's conclusion: "We also seek a more effective and less
computationally intensive video quality measure ...".  SSIM (Wang et
al., 2004 — contemporary with the paper) is the standard answer: it
compares local luminance, contrast and structure instead of raw pixel
error, tracking perceived quality far better than PSNR on blocky or
smeared loss damage.

This is the classic windowed formulation with uniform (box) windows::

    SSIM(x, y) = mean over windows of
        ((2 mu_x mu_y + C1)(2 cov_xy + C2)) /
        ((mu_x^2 + mu_y^2 + C1)(sigma_x^2 + sigma_y^2 + C2))

with C1 = (0.01 * 255)^2, C2 = (0.03 * 255)^2.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_C1 = (0.01 * 255.0) ** 2
_C2 = (0.03 * 255.0) ** 2


def _window_means(values: np.ndarray, window: int) -> np.ndarray:
    """Mean of every ``window x window`` patch (valid positions only)."""
    integral = np.zeros(
        (values.shape[0] + 1, values.shape[1] + 1), dtype=np.float64
    )
    integral[1:, 1:] = np.cumsum(np.cumsum(values, axis=0), axis=1)
    area = (
        integral[window:, window:]
        - integral[:-window, window:]
        - integral[window:, :-window]
        + integral[:-window, :-window]
    )
    return area / (window * window)


def ssim(
    original: np.ndarray, reconstructed: np.ndarray, window: int = 8
) -> float:
    """Mean SSIM between two equally shaped 8-bit frames, in [-1, 1]."""
    if original.shape != reconstructed.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {reconstructed.shape}"
        )
    if window < 2 or window > min(original.shape):
        raise ValueError(f"window {window} invalid for shape {original.shape}")
    x = original.astype(np.float64)
    y = reconstructed.astype(np.float64)

    mu_x = _window_means(x, window)
    mu_y = _window_means(y, window)
    mu_xx = _window_means(x * x, window)
    mu_yy = _window_means(y * y, window)
    mu_xy = _window_means(x * y, window)

    var_x = mu_xx - mu_x * mu_x
    var_y = mu_yy - mu_y * mu_y
    cov = mu_xy - mu_x * mu_y

    numerator = (2 * mu_x * mu_y + _C1) * (2 * cov + _C2)
    denominator = (mu_x**2 + mu_y**2 + _C1) * (var_x + var_y + _C2)
    return float(np.mean(numerator / denominator))


def sequence_ssim(
    originals: Sequence[np.ndarray],
    reconstructions: Sequence[np.ndarray],
    window: int = 8,
) -> list[float]:
    """Per-frame SSIM of a whole sequence."""
    if len(originals) != len(reconstructions):
        raise ValueError("sequences must have equal length")
    return [ssim(o, r, window) for o, r in zip(originals, reconstructions)]
