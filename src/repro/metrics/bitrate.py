"""Encoded-size statistics: file size, bitrate, and smoothness.

Figure 5(c) compares total encoded file size; Figure 6(b) shows
per-frame size variation, where GOP's I-frame spikes are the drawback
the paper calls out ("GOP generates an uneven bitstream that is
undesirable from a communication perspective").  The coefficient of
variation and peak-to-mean ratio quantify that unevenness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class FrameSizeStats:
    """Summary of a sequence's per-frame encoded sizes (bytes)."""

    total_bytes: int
    mean_bytes: float
    std_bytes: float
    max_bytes: int
    min_bytes: int

    @property
    def coefficient_of_variation(self) -> float:
        """std/mean — 0 for a perfectly smooth bitstream."""
        return self.std_bytes / self.mean_bytes if self.mean_bytes else 0.0

    @property
    def peak_to_mean(self) -> float:
        """max/mean — how tall the I-frame spikes stand."""
        return self.max_bytes / self.mean_bytes if self.mean_bytes else 0.0


def frame_size_stats(sizes_bytes: Sequence[int]) -> FrameSizeStats:
    """Compute :class:`FrameSizeStats` from per-frame sizes."""
    if not sizes_bytes:
        raise ValueError("need at least one frame size")
    arr = np.asarray(sizes_bytes, dtype=np.float64)
    if (arr < 0).any():
        raise ValueError("frame sizes must be >= 0")
    return FrameSizeStats(
        total_bytes=int(arr.sum()),
        mean_bytes=float(arr.mean()),
        std_bytes=float(arr.std()),
        max_bytes=int(arr.max()),
        min_bytes=int(arr.min()),
    )


def bitrate_kbps(sizes_bytes: Sequence[int], fps: float = 30.0) -> float:
    """Average bitstream rate in kilobits per second."""
    if fps <= 0:
        raise ValueError("fps must be positive")
    if not sizes_bytes:
        raise ValueError("need at least one frame size")
    bits = 8.0 * float(np.sum(sizes_bytes))
    seconds = len(sizes_bytes) / fps
    return bits / seconds / 1000.0
