"""Quality and rate metrics used in the paper's evaluation.

* :mod:`repro.metrics.psnr` — peak signal-to-noise ratio (Figure 5a/6a).
* :mod:`repro.metrics.bad_pixels` — the paper's bad-pixel count, the
  metric it argues represents error resiliency better than PSNR
  (Figure 5b, Section 4.4).
* :mod:`repro.metrics.bitrate` — encoded size and frame-size-variation
  statistics (Figures 5c and 6b).
"""

from repro.metrics.psnr import psnr, mse, sequence_psnr, average_psnr
from repro.metrics.bad_pixels import (
    bad_pixel_count,
    bad_pixel_map,
    sequence_bad_pixels,
    DEFAULT_BAD_PIXEL_THRESHOLD,
)
from repro.metrics.bitrate import (
    FrameSizeStats,
    frame_size_stats,
    bitrate_kbps,
)
from repro.metrics.ssim import ssim, sequence_ssim

__all__ = [
    "psnr",
    "mse",
    "sequence_psnr",
    "average_psnr",
    "bad_pixel_count",
    "bad_pixel_map",
    "sequence_bad_pixels",
    "DEFAULT_BAD_PIXEL_THRESHOLD",
    "FrameSizeStats",
    "frame_size_stats",
    "bitrate_kbps",
    "ssim",
    "sequence_ssim",
]
