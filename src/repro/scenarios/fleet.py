"""The fleet report: every scheme × every scenario, percentile tables.

ROADMAP item 4's deliverable: sweep the Figure-5 scheme set across the
shipped scenario packs (plus replicas over channel seeds) and emit, per
(scheme, pack) cell, percentile decoder quality, mean energy, channel
loss, resilience accounting, and the paper's error-recovery length
(frames until PSNR re-enters a band of the loss-free run — Section
4.2's "faster error recovery", here measured per loss event and
aggregated per cell).

Every cell also carries a content digest over its replicas' delivered
values (:func:`repro.service.wire.session_result_digest`), and the
report digests those into one fleet digest — the determinism pin:
serial and pooled sweeps of the same grid must produce the identical
digest, which ``benchmarks/bench_scenarios.py`` gates in CI.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from repro.scenarios.pack import ScenarioPack, available_packs, load_pack
from repro.service.wire import percentile, session_result_digest
from repro.sim.pipeline import SimulationConfig, SimulationResult
from repro.sim.runner import JobSpec, RunnerOptions, run_grid
from repro.video.synthetic import SyntheticConfig

#: The Figure-5 scheme set — the fleet's default sweep axis.
FLEET_SCHEMES = ("NO", "GOP-3", "AIR-24", "PGOP-3", "PBPAIR")

#: Recovery band: a frame has "recovered" when decoder PSNR is back
#: within this many dB of the encoder-side (loss-free) PSNR.
RECOVERY_DIP_DB = 2.0


def resolve_packs(
    packs: Optional[Iterable[Union[str, ScenarioPack]]] = None,
) -> tuple[ScenarioPack, ...]:
    """Load pack names (``None`` = every shipped pack) into packs."""
    if packs is None:
        packs = available_packs()
    return tuple(
        pack if isinstance(pack, ScenarioPack) else load_pack(pack)
        for pack in packs
    )


def fleet_jobs(
    schemes: Sequence[str] = FLEET_SCHEMES,
    packs: Optional[Iterable[Union[str, ScenarioPack]]] = None,
    *,
    sequence: str = "foreman",
    n_frames: int = 30,
    replicas: int = 2,
    base_seed: int = 0,
    config: Optional[SimulationConfig] = None,
    synthetic: Optional[SyntheticConfig] = None,
) -> list[JobSpec]:
    """The fleet grid, pack-major: pack, then scheme, then replica.

    Each job's ``plr`` is set to its pack's nominal loss rate — the
    channel ignores it (the scenario rules), but loss-aware encoders
    (PBPAIR's assumed ``alpha``) read it, so every scheme gets an
    honest estimate of the channel it is about to face.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    jobs = []
    for pack in resolve_packs(packs):
        assumed_plr = round(pack.nominal_loss_rate(), 4)
        for scheme in schemes:
            for replica in range(replicas):
                jobs.append(
                    JobSpec(
                        scheme=scheme,
                        plr=assumed_plr,
                        channel_seed=base_seed + replica,
                        sequence=sequence,
                        n_frames=n_frames,
                        synthetic=synthetic,
                        config=config or SimulationConfig(),
                        scenario=pack,
                    )
                )
    return jobs


def _round_or_none(value: float, digits: int) -> Optional[float]:
    return None if math.isnan(value) else round(value, digits)


def _psnr_percentiles(results: Sequence[SimulationResult]) -> dict:
    """p50/p95/p99 over the pooled per-frame decoder PSNR of a cell.

    Non-finite frames (a bit-exact frame has infinite PSNR) are
    excluded rather than clamped to an invented number.
    """
    values = [
        float(f.psnr_decoder)
        for result in results
        for f in result.frames
        if math.isfinite(f.psnr_decoder)
    ]
    return {
        q: _round_or_none(percentile(values, int(q[1:])), 3)
        for q in ("p50", "p95", "p99")
    }


def recovery_summary(
    results: Sequence[SimulationResult], dip_db: float = RECOVERY_DIP_DB
) -> dict:
    """Aggregate per-loss-event recovery lengths across a cell.

    Events and lengths come from
    :meth:`~repro.sim.pipeline.SimulationResult.recovery_times`; a cell
    with no loss events reports honest ``None`` aggregates.
    """
    times = [
        float(t)
        for result in results
        for t in result.recovery_times(dip_db)
    ]
    return {
        "events": len(times),
        "mean_frames": (
            round(sum(times) / len(times), 3) if times else None
        ),
        "p95_frames": _round_or_none(percentile(times, 95), 2),
        "max_frames": int(max(times)) if times else None,
    }


@dataclass(frozen=True)
class FleetCell:
    """One (scheme, pack) cell of the fleet report."""

    scheme: str
    pack: str
    replicas: int
    psnr_db: Mapping[str, Optional[float]]
    energy_j: float
    loss_rate: float
    recovery: Mapping[str, Any]
    fec_recovered: int
    retransmissions: int
    deadline_drops: int
    digest: str

    def to_json(self) -> dict:
        return {
            "scheme": self.scheme,
            "pack": self.pack,
            "replicas": self.replicas,
            "psnr_db": dict(self.psnr_db),
            "energy_j": self.energy_j,
            "loss_rate": self.loss_rate,
            "recovery": dict(self.recovery),
            "fec_recovered": self.fec_recovered,
            "retransmissions": self.retransmissions,
            "deadline_drops": self.deadline_drops,
            "digest": self.digest,
        }


def build_cell(
    scheme: str, pack: str, results: Sequence[SimulationResult]
) -> FleetCell:
    """Aggregate one cell's replicas into its report row."""
    logs = [result.channel_log for result in results]
    return FleetCell(
        scheme=scheme,
        pack=pack,
        replicas=len(results),
        psnr_db=_psnr_percentiles(results),
        energy_j=round(
            sum(r.energy_joules for r in results) / len(results), 6
        ),
        loss_rate=round(
            sum(log.loss_rate for log in logs) / len(logs), 4
        ),
        recovery=recovery_summary(results),
        fec_recovered=sum(log.fec_recovered for log in logs),
        retransmissions=sum(log.retransmissions for log in logs),
        deadline_drops=sum(log.deadline_drops for log in logs),
        digest=hashlib.sha256(
            json.dumps(
                sorted(session_result_digest(r) for r in results)
            ).encode("utf-8")
        ).hexdigest(),
    )


@dataclass(frozen=True)
class FleetReport:
    """The full scheme × scenario sweep, cell by cell."""

    sequence: str
    n_frames: int
    replicas: int
    schemes: tuple[str, ...]
    packs: tuple[str, ...]
    cells: tuple[FleetCell, ...]

    @property
    def digest(self) -> str:
        """One digest over every cell's delivered values.

        Equal between a serial and a pooled sweep of the same grid —
        the fleet-level determinism pin.
        """
        lines = sorted(
            f"{c.scheme}|{c.pack}|{c.digest}" for c in self.cells
        )
        return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()

    def cell(self, scheme: str, pack: str) -> FleetCell:
        for candidate in self.cells:
            if candidate.scheme == scheme and candidate.pack == pack:
                return candidate
        raise KeyError(f"no fleet cell ({scheme!r}, {pack!r})")

    def to_json(self) -> dict:
        return {
            "sequence": self.sequence,
            "n_frames": self.n_frames,
            "replicas": self.replicas,
            "schemes": list(self.schemes),
            "packs": list(self.packs),
            "digest": self.digest,
            "cells": [cell.to_json() for cell in self.cells],
        }

    def rows(self) -> list[list[str]]:
        """Render cells for the CLI table, pack-major."""

        def fmt(value, suffix: str = "") -> str:
            return "-" if value is None else f"{value:g}{suffix}"

        rows = []
        for cell in self.cells:
            rows.append(
                [
                    cell.pack,
                    cell.scheme,
                    fmt(cell.psnr_db.get("p50")),
                    fmt(cell.psnr_db.get("p95")),
                    f"{100.0 * cell.loss_rate:.1f}%",
                    f"{cell.energy_j:.3f}",
                    fmt(cell.recovery.get("mean_frames")),
                    str(cell.fec_recovered + cell.retransmissions),
                ]
            )
        return rows


#: Column headers matching :meth:`FleetReport.rows`.
FLEET_COLUMNS = (
    "pack",
    "scheme",
    "psnr p50",
    "psnr p95",
    "loss",
    "energy J",
    "recovery",
    "repairs",
)


def run_fleet(
    schemes: Sequence[str] = FLEET_SCHEMES,
    packs: Optional[Iterable[Union[str, ScenarioPack]]] = None,
    *,
    sequence: str = "foreman",
    n_frames: int = 30,
    replicas: int = 2,
    base_seed: int = 0,
    config: Optional[SimulationConfig] = None,
    synthetic: Optional[SyntheticConfig] = None,
    options: Optional[RunnerOptions] = None,
) -> FleetReport:
    """Run the scheme × scenario sweep and aggregate the report.

    Encode-once applies across the pack axis: a pack changes only the
    channel, so every pack reuses one encoded stream per scheme (PBPAIR
    splits per distinct assumed loss rate).  Any cell failure raises —
    a fleet report with silent holes would misreport the matrix.
    """
    resolved = resolve_packs(packs)
    jobs = fleet_jobs(
        schemes,
        resolved,
        sequence=sequence,
        n_frames=n_frames,
        replicas=replicas,
        base_seed=base_seed,
        config=config,
        synthetic=synthetic,
    )
    outcomes = run_grid(jobs, options=options or RunnerOptions())
    failures = [o for o in outcomes if not o.ok]
    if failures:
        first = failures[0]
        raise RuntimeError(
            f"{len(failures)} fleet cells failed: "
            f"{first.error_type}: {first.message}"
        )
    cells = []
    index = 0
    for pack in resolved:
        for scheme in schemes:
            group = [outcomes[index + r].result for r in range(replicas)]
            index += replicas
            cells.append(build_cell(scheme, pack.name, group))
    return FleetReport(
        sequence=sequence,
        n_frames=n_frames,
        replicas=replicas,
        schemes=tuple(schemes),
        packs=tuple(pack.name for pack in resolved),
        cells=tuple(cells),
    )
