"""Declarative channel scenario packs and the fleet sweep.

A :class:`ScenarioPack` describes a channel as a timeline of segments —
loss model, bandwidth cap, optional FEC/retransmission wrapper — as
plain versioned data (JSON files under ``repro/scenarios/packs/``).
:class:`ScenarioChannel` interprets a pack at simulation time, and
:func:`run_fleet` sweeps every scheme × every pack into a percentile
quality/energy report.  See ``docs/architecture.md`` ("Scenario
packs") for the pack schema and authoring guide.
"""

from repro.scenarios.pack import (
    LOSS_KINDS,
    SCENARIO_SCHEMA_VERSION,
    SUPPORTED_SCENARIO_SCHEMAS,
    LossSpec,
    ResilienceSpec,
    ScenarioFormatError,
    ScenarioPack,
    ScenarioSegment,
    available_packs,
    load_pack,
    packs_dir,
    parse_scenario,
    write_pack,
)
from repro.scenarios.channel import ScenarioChannel, segment_seed

# Fleet names resolve lazily: repro.sim.runner imports repro.scenarios.pack
# (which initialises this package), while repro.scenarios.fleet imports the
# runner back.  Deferring the fleet import until first attribute access keeps
# the pack/channel surface importable from anywhere in that cycle.
_FLEET_NAMES = (
    "FLEET_COLUMNS",
    "FLEET_SCHEMES",
    "RECOVERY_DIP_DB",
    "FleetCell",
    "FleetReport",
    "build_cell",
    "fleet_jobs",
    "recovery_summary",
    "resolve_packs",
    "run_fleet",
)


def __getattr__(name):
    if name in _FLEET_NAMES:
        from repro.scenarios import fleet

        return getattr(fleet, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "LOSS_KINDS",
    "SCENARIO_SCHEMA_VERSION",
    "SUPPORTED_SCENARIO_SCHEMAS",
    "LossSpec",
    "ResilienceSpec",
    "ScenarioFormatError",
    "ScenarioPack",
    "ScenarioSegment",
    "available_packs",
    "load_pack",
    "packs_dir",
    "parse_scenario",
    "write_pack",
    "ScenarioChannel",
    "segment_seed",
    "FLEET_COLUMNS",
    "FLEET_SCHEMES",
    "RECOVERY_DIP_DB",
    "FleetCell",
    "FleetReport",
    "build_cell",
    "fleet_jobs",
    "recovery_summary",
    "resolve_packs",
    "run_fleet",
]
