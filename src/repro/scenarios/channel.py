"""Interpret a :class:`ScenarioPack` as a live channel.

:class:`ScenarioChannel` duck-types :class:`repro.network.channel.Channel`
(``transmit`` / ``log`` / ``reset``), so the simulation pipeline swaps
it in without caring that behind the interface the channel is a
timeline: each packet is routed to the segment its frame falls in, and
each segment owns its own loss model, optional bandwidth cap, and
optional FEC/retransmission wrapper.

Determinism: every segment's loss model is seeded from the channel
seed plus the *segment index* via the structural-key pattern
(:func:`repro.network.loss.structural_rng`), so a segment's packet
fates do not depend on what earlier segments drew, on worker count, or
on call order — serial and pooled runs of the same job are
bit-identical.
"""

from __future__ import annotations

from repro.network.channel import ChannelLog
from repro.network.link import BandwidthDeadlineLoss
from repro.network.loss import LossModel, structural_rng
from repro.network.packet import Packet
from repro.network.protection import ResilienceWrapper
from repro.scenarios.pack import ScenarioPack, ScenarioSegment


def segment_seed(channel_seed: int, segment_index: int) -> int:
    """Independent per-segment seed from the job's channel seed."""
    return int(
        structural_rng(channel_seed, "scenario-segment", segment_index)
        .integers(0, 2**32)
    )


class _ComposedLoss(LossModel):
    """AND of several fate oracles (bandwidth cap + loss model).

    Every member sees every packet — no short-circuiting — so each
    model's internal state (burst chains, link queues) advances
    identically whether or not another member already dropped the
    packet.  That keeps draw sequences stable when packs are edited.
    """

    def __init__(self, models: list[LossModel]) -> None:
        self.models = models

    def reset(self) -> None:
        for model in self.models:
            model.reset()

    def survives(self, packet: Packet) -> bool:
        fates = [model.survives(packet) for model in self.models]
        return all(fates)


class ScenarioChannel:
    """Pushes packets through the scenario's per-segment machinery.

    The single :class:`ChannelLog` is shared by every segment's
    wrapper, so the run's accounting (including FEC/retransmission
    counters) reads exactly like a plain channel's.
    """

    def __init__(self, pack: ScenarioPack, seed: int = 0) -> None:
        self.pack = pack
        self.seed = seed
        self.log = ChannelLog()
        self._segments = [
            self._build_segment(index, spec)
            for index, spec in enumerate(pack.segments)
        ]

    def _build_segment(
        self, index: int, spec: ScenarioSegment
    ) -> ResilienceWrapper:
        models: list[LossModel] = []
        if spec.bandwidth_kbps > 0:
            models.append(
                BandwidthDeadlineLoss(
                    kbps=spec.bandwidth_kbps,
                    playout_delay_s=spec.playout_delay_s,
                    fps=self.pack.fps,
                )
            )
        models.append(spec.loss.build(segment_seed(self.seed, index)))
        fate: LossModel = models[0] if len(models) == 1 else _ComposedLoss(
            models
        )
        resilience = spec.resilience
        return ResilienceWrapper(
            fate,
            fec_window=resilience.fec_window if resilience else 0,
            retx_limit=resilience.retx_limit if resilience else 0,
            log=self.log,
        )

    def reset(self) -> None:
        self.log = ChannelLog()
        self._segments = [
            self._build_segment(index, spec)
            for index, spec in enumerate(self.pack.segments)
        ]

    def transmit(self, packets: list[Packet]) -> list[Packet]:
        """Return the surviving packets, preserving order.

        The pipeline transmits one frame per call, but multi-frame
        batches are handled too: consecutive packets of one segment
        travel together (FEC windows never straddle a segment
        boundary).
        """
        survivors: list[Packet] = []
        start = 0
        while start < len(packets):
            index = self.pack.segment_index_for_frame(
                packets[start].frame_index
            )
            stop = start + 1
            while (
                stop < len(packets)
                and self.pack.segment_index_for_frame(
                    packets[stop].frame_index
                )
                == index
            ):
                stop += 1
            survivors.extend(
                self._segments[index].transmit(packets[start:stop])
            )
            start = stop
        return survivors
