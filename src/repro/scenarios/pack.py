"""Declarative, schema-versioned channel scenario packs.

A :class:`ScenarioPack` describes a channel as a *timeline of segments*
— plain frozen data, so a pack pickles to worker processes, hashes
stably into the result-cache key, crosses the service wire as JSON, and
ships as a data file under ``repro/scenarios/packs/``.  Each
:class:`ScenarioSegment` holds a loss model (:class:`LossSpec`), an
optional bandwidth cap, and an optional channel-side FEC/retransmission
wrapper (:class:`ResilienceSpec`); handoff and mobility profiles are
just multi-segment packs whose conditions shift at frame boundaries.

The pack itself never touches packets — it is interpreted by
:class:`repro.scenarios.channel.ScenarioChannel` at simulation time.
Serialization mirrors the :class:`repro.faults.FaultPlan` precedent:
``to_json`` writes only non-default fields, ``from_json`` rejects
unknown fields, and every rendered pack carries an explicit
``schema_version`` checked against :data:`SUPPORTED_SCENARIO_SCHEMAS`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.network.loss import (
    GilbertElliottLoss,
    LossModel,
    MarkovBurstLoss,
    NoLoss,
    TraceLoss,
    UniformLoss,
)

#: Version stamped on every pack this module writes.  Bump on
#: incompatible layout changes; the loader keeps accepting the previous
#: version, mirroring the wire/trace schema precedent.
SCENARIO_SCHEMA_VERSION = 1

#: Pack schema versions :func:`ScenarioPack.from_json` understands.
SUPPORTED_SCENARIO_SCHEMAS = frozenset(
    v for v in (SCENARIO_SCHEMA_VERSION - 1, SCENARIO_SCHEMA_VERSION)
    if v >= 1
)

#: Loss-model kinds a segment can declare.
LOSS_KINDS = (
    "none",
    "uniform",
    "gilbert_elliott",
    "markov_burst",
    "trace",
    "plr_series",
)


class ScenarioFormatError(ValueError):
    """A scenario rendering that does not parse under a supported schema."""


def _reject_unknown(cls: type, record: Mapping[str, Any]) -> None:
    known = {f.name for f in fields(cls)}
    unknown = set(record) - known
    if unknown:
        raise ScenarioFormatError(
            f"unknown {cls.__name__} fields: {sorted(unknown)}"
        )


def _non_default_fields(obj: Any, always: tuple[str, ...] = ()) -> dict:
    """FaultSpec's rendering idiom: keep only non-default fields
    (plus ``always``), tuples as lists."""
    record: dict[str, Any] = {}
    for f in fields(obj):
        value = getattr(obj, f.name)
        if f.name not in always and value == f.default:
            continue
        record[f.name] = list(value) if isinstance(value, tuple) else value
    return record


@dataclass(frozen=True)
class LossSpec:
    """One segment's loss model, as declarative data.

    ``kind`` selects the model; only that kind's knobs are meaningful
    (the rest keep their defaults and are omitted from JSON):

    * ``"none"`` — the ideal channel.
    * ``"uniform"`` — i.i.d. drop: ``plr``, ``granularity``.
    * ``"gilbert_elliott"`` — two-state burst: ``p_good_to_bad``,
      ``p_bad_to_good``, ``good_loss``, ``bad_loss``.
    * ``"markov_burst"`` — k-state burst erasure: ``p_enter``,
      ``escape`` (one entry per burst depth).
    * ``"trace"`` — explicit recorded fate string: ``pattern``
      ('.' delivered, 'x' lost, one char per frame).
    * ``"plr_series"`` — scripted per-frame PLR series realized
      deterministically from the channel seed: ``plr_series``.

    The model seed is *not* part of the spec: it is supplied at build
    time (from the job's channel seed plus the segment index), so one
    pack replicates across seeds without editing data files.
    """

    kind: str = "uniform"
    plr: float = 0.1
    granularity: str = "frame"
    p_good_to_bad: float = 0.05
    p_bad_to_good: float = 0.4
    good_loss: float = 0.0
    bad_loss: float = 1.0
    p_enter: float = 0.05
    escape: tuple[float, ...] = (0.5,)
    pattern: str = ""
    plr_series: tuple[float, ...] = ()
    protect_first_frame: bool = True

    def __post_init__(self) -> None:
        if self.kind not in LOSS_KINDS:
            known = ", ".join(LOSS_KINDS)
            raise ScenarioFormatError(
                f"unknown loss kind {self.kind!r} (known: {known})"
            )
        object.__setattr__(self, "escape", tuple(float(e) for e in self.escape))
        object.__setattr__(
            self, "plr_series", tuple(float(p) for p in self.plr_series)
        )
        for name in ("plr", "p_good_to_bad", "p_bad_to_good", "good_loss",
                     "bad_loss", "p_enter"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ScenarioFormatError(
                    f"{name} must be in [0, 1], got {value}"
                )
        if self.granularity not in ("frame", "packet"):
            raise ScenarioFormatError(
                f"granularity must be 'frame' or 'packet', "
                f"got {self.granularity!r}"
            )
        for e in self.escape:
            if not 0.0 < e <= 1.0:
                raise ScenarioFormatError(
                    f"escape probabilities must be in (0, 1], got {e}"
                )
        for p in self.plr_series:
            if not 0.0 <= p <= 1.0:
                raise ScenarioFormatError(
                    f"plr_series entries must be in [0, 1], got {p}"
                )
        if self.kind == "trace":
            if not self.pattern or set(self.pattern) - set(".x"):
                raise ScenarioFormatError(
                    "trace kind needs a non-empty pattern of '.' and 'x'"
                )
        if self.kind == "plr_series" and not self.plr_series:
            raise ScenarioFormatError(
                "plr_series kind needs a non-empty plr_series"
            )

    def build(self, seed: int) -> LossModel:
        """Instantiate the declared model with a concrete seed."""
        if self.kind == "none":
            return NoLoss()
        if self.kind == "uniform":
            return UniformLoss(
                plr=self.plr,
                seed=seed,
                protect_first_frame=self.protect_first_frame,
                granularity=self.granularity,
            )
        if self.kind == "gilbert_elliott":
            return GilbertElliottLoss(
                p_good_to_bad=self.p_good_to_bad,
                p_bad_to_good=self.p_bad_to_good,
                good_loss=self.good_loss,
                bad_loss=self.bad_loss,
                seed=seed,
                protect_first_frame=self.protect_first_frame,
            )
        if self.kind == "markov_burst":
            return MarkovBurstLoss(
                p_enter=self.p_enter,
                escape=self.escape,
                seed=seed,
                protect_first_frame=self.protect_first_frame,
            )
        if self.kind == "trace":
            return TraceLoss.from_loss_rate_pattern(self.pattern)
        return TraceLoss.from_plr_series(self.plr_series, seed=seed)

    def nominal_loss_rate(self) -> float:
        """The model's long-run loss rate (analytic where available).

        Used as the *encoder-side assumption* for schemes that take an
        expected PLR (PBPAIR's ``alpha``); the channel itself never
        reads it.
        """
        if self.kind == "none":
            return 0.0
        if self.kind == "uniform":
            return self.plr
        if self.kind == "gilbert_elliott":
            total = self.p_good_to_bad + self.p_bad_to_good
            if total == 0:
                return self.good_loss
            pi_bad = self.p_good_to_bad / total
            return pi_bad * self.bad_loss + (1 - pi_bad) * self.good_loss
        if self.kind == "markov_burst":
            return MarkovBurstLoss(
                self.p_enter, self.escape
            ).steady_state_loss_rate
        if self.kind == "trace":
            return self.pattern.count("x") / len(self.pattern)
        return sum(self.plr_series) / len(self.plr_series)

    def to_json(self) -> dict:
        return _non_default_fields(self, always=("kind",))

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "LossSpec":
        _reject_unknown(cls, record)
        kwargs = dict(record)
        for name in ("escape", "plr_series"):
            if name in kwargs:
                kwargs[name] = tuple(kwargs[name])
        return cls(**kwargs)


@dataclass(frozen=True)
class ResilienceSpec:
    """Channel-side protection a segment wraps around its loss model.

    At least one mechanism must be enabled — a segment without
    protection simply omits the spec.  See
    :class:`repro.network.protection.ResilienceWrapper` for semantics.
    """

    fec_window: int = 0
    retx_limit: int = 0

    def __post_init__(self) -> None:
        if self.fec_window < 0 or self.fec_window == 1:
            raise ScenarioFormatError(
                f"fec_window must be 0 (off) or >= 2, got {self.fec_window}"
            )
        if self.retx_limit < 0:
            raise ScenarioFormatError(
                f"retx_limit must be >= 0, got {self.retx_limit}"
            )
        if self.fec_window == 0 and self.retx_limit == 0:
            raise ScenarioFormatError(
                "resilience needs fec_window >= 2 or retx_limit >= 1 "
                "(omit the spec for an unprotected segment)"
            )

    def to_json(self) -> dict:
        return _non_default_fields(self)

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "ResilienceSpec":
        _reject_unknown(cls, record)
        return cls(**record)


@dataclass(frozen=True)
class ScenarioSegment:
    """One stretch of the channel timeline.

    Attributes:
        frames: how many frames this segment covers; ``0`` means "the
            rest of the clip" and is only allowed on the final segment
            (a pack outliving its explicit timeline stays in its last
            segment).
        loss: the segment's loss model.
        bandwidth_kbps: link capacity cap; ``0`` means uncapped.  A
            capped segment also drops packets that miss the playout
            deadline (see
            :class:`repro.network.link.BandwidthDeadlineLoss`).
        playout_delay_s: receiver buffer for the bandwidth cap.
        resilience: optional FEC/retransmission wrapper.
        label: free-form display name ("highway", "tunnel", ...).
    """

    frames: int = 0
    loss: LossSpec = LossSpec()
    bandwidth_kbps: float = 0.0
    playout_delay_s: float = 0.25
    resilience: Optional[ResilienceSpec] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.frames < 0:
            raise ScenarioFormatError(
                f"segment frames must be >= 0, got {self.frames}"
            )
        if self.bandwidth_kbps < 0:
            raise ScenarioFormatError(
                f"bandwidth_kbps must be >= 0, got {self.bandwidth_kbps}"
            )
        if self.playout_delay_s < 0:
            raise ScenarioFormatError(
                f"playout_delay_s must be >= 0, got {self.playout_delay_s}"
            )
        if not isinstance(self.loss, LossSpec):
            raise ScenarioFormatError(
                f"loss must be a LossSpec, got {type(self.loss)!r}"
            )
        if self.resilience is not None and not isinstance(
            self.resilience, ResilienceSpec
        ):
            raise ScenarioFormatError(
                f"resilience must be a ResilienceSpec, "
                f"got {type(self.resilience)!r}"
            )

    def to_json(self) -> dict:
        record = _non_default_fields(self, always=("frames",))
        record["loss"] = self.loss.to_json()
        if self.resilience is not None:
            record["resilience"] = self.resilience.to_json()
        return record

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "ScenarioSegment":
        _reject_unknown(cls, record)
        kwargs = dict(record)
        if "loss" in kwargs:
            kwargs["loss"] = LossSpec.from_json(kwargs["loss"])
        if kwargs.get("resilience") is not None:
            kwargs["resilience"] = ResilienceSpec.from_json(
                kwargs["resilience"]
            )
        return cls(**kwargs)


@dataclass(frozen=True)
class ScenarioPack:
    """A named, versioned channel scenario: segments on a timeline.

    The unit that travels: ``simulate(..., scenario=pack)``,
    ``JobSpec(..., scenario=pack)``, ``RunnerOptions(scenario=pack)``
    and the CLI ``--scenario`` flag all accept one.  The pack is
    deliberately *transmit-side only* — it joins the result-cache and
    wire keys but not the encoded-stream key, so a fleet sweep across
    many scenarios encodes each (scheme, clip) exactly once.
    """

    name: str
    segments: tuple[ScenarioSegment, ...]
    fps: float = 30.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ScenarioFormatError("pack name must be a non-empty string")
        object.__setattr__(self, "segments", tuple(self.segments))
        if not self.segments:
            raise ScenarioFormatError("a pack needs at least one segment")
        for index, segment in enumerate(self.segments):
            if not isinstance(segment, ScenarioSegment):
                raise ScenarioFormatError(
                    f"segments must be ScenarioSegment, got {type(segment)!r}"
                )
            if segment.frames == 0 and index != len(self.segments) - 1:
                raise ScenarioFormatError(
                    f"segment {index} has frames=0 (rest-of-clip), which "
                    f"only the final segment may use"
                )
        if self.fps <= 0:
            raise ScenarioFormatError(f"fps must be > 0, got {self.fps}")

    @property
    def timeline_frames(self) -> int:
        """Frames covered by explicit (non-open-ended) segments."""
        return sum(s.frames for s in self.segments)

    def nominal_loss_rate(self) -> float:
        """Frame-weighted long-run loss rate across the timeline.

        A rough *encoder-side* figure (what a scheme like PBPAIR should
        assume); an open-ended final segment is weighted as one second
        of video.  Ignores bandwidth caps and resilience wrappers.
        """
        total_weight = 0.0
        weighted = 0.0
        for segment in self.segments:
            weight = segment.frames if segment.frames > 0 else self.fps
            weighted += weight * segment.loss.nominal_loss_rate()
            total_weight += weight
        return weighted / total_weight

    def segment_index_for_frame(self, frame_index: int) -> int:
        """Which segment a frame falls in; the last segment persists
        past the end of the explicit timeline."""
        if frame_index < 0:
            raise ValueError(f"frame_index must be >= 0, got {frame_index}")
        start = 0
        for index, segment in enumerate(self.segments):
            if segment.frames == 0 or frame_index < start + segment.frames:
                return index
            start += segment.frames
        return len(self.segments) - 1

    def to_json(self) -> dict:
        record: dict[str, Any] = {
            "schema_version": SCENARIO_SCHEMA_VERSION,
            "name": self.name,
        }
        if self.description:
            record["description"] = self.description
        if self.fps != 30.0:
            record["fps"] = self.fps
        record["segments"] = [s.to_json() for s in self.segments]
        return record

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "ScenarioPack":
        schema = record.get("schema_version")
        if schema not in SUPPORTED_SCENARIO_SCHEMAS:
            supported = sorted(SUPPORTED_SCENARIO_SCHEMAS)
            raise ScenarioFormatError(
                f"scenario pack schema {schema!r} "
                f"(this reader understands {supported})"
            )
        known = {f.name for f in fields(cls)} | {"schema_version"}
        unknown = set(record) - known
        if unknown:
            raise ScenarioFormatError(
                f"unknown ScenarioPack fields: {sorted(unknown)}"
            )
        return cls(
            name=record["name"],
            segments=tuple(
                ScenarioSegment.from_json(s)
                for s in record.get("segments", ())
            ),
            fps=float(record.get("fps", 30.0)),
            description=record.get("description", ""),
        )


# ---------------------------------------------------------------------------
# Shipped packs and parsing
# ---------------------------------------------------------------------------


def packs_dir() -> Path:
    """Directory of the scenario packs shipped with the package."""
    return Path(__file__).resolve().parent / "packs"


def available_packs() -> tuple[str, ...]:
    """Names of the shipped packs, sorted."""
    return tuple(
        sorted(path.stem for path in packs_dir().glob("*.json"))
    )


def load_pack(name_or_path: Union[str, Path]) -> ScenarioPack:
    """Load a shipped pack by name, or any pack file by path."""
    shipped = packs_dir() / f"{name_or_path}.json"
    path = shipped if shipped.is_file() else Path(name_or_path)
    if not path.is_file():
        known = ", ".join(available_packs()) or "(none)"
        raise ScenarioFormatError(
            f"no scenario pack {str(name_or_path)!r} "
            f"(shipped packs: {known}; or pass a file path)"
        )
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ScenarioFormatError(f"{path} is not valid JSON: {exc}") from exc
    return ScenarioPack.from_json(record)


def write_pack(pack: ScenarioPack, path: Union[str, Path]) -> Path:
    """Render a pack to a JSON data file (how packs are authored)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(pack.to_json(), indent=2) + "\n", encoding="utf-8"
    )
    return path


def parse_scenario(text: str) -> ScenarioPack:
    """Parse the CLI's ``--scenario`` argument.

    Accepts, in order: inline JSON (anything starting with ``{``), a
    shipped pack name, or a path to a pack file.
    """
    stripped = text.strip()
    if stripped.startswith("{"):
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError as exc:
            raise ScenarioFormatError(
                f"inline scenario is not valid JSON: {exc}"
            ) from exc
        return ScenarioPack.from_json(record)
    return load_pack(stripped)
