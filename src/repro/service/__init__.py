"""The streaming session service: a long-lived encode daemon.

``repro.service`` turns the batch grid runner into a durable local
service: :mod:`~repro.service.wire` defines the schema-versioned job
API, :mod:`~repro.service.queue` the persistent CAS-claimed job queue,
:mod:`~repro.service.daemon` the asyncio HTTP+JSONL daemon behind
``repro serve``, and :mod:`~repro.service.client` the synchronous
:class:`ServiceClient` used by ``repro submit``/``status``/``drain``.

Import from :mod:`repro.api` in examples and benchmarks — it re-exports
this surface and is the only import path the hygiene tests allow.
"""

from repro.service.client import ServiceBusy, ServiceClient, ServiceClientError
from repro.service.daemon import (
    DEFAULT_PORT,
    DaemonHandle,
    EncodeDaemon,
    ServiceConfig,
    serve,
    start_daemon,
)
from repro.service.queue import ClaimLost, JobQueue, JobRecord, QueueFull
from repro.service.wire import (
    JOB_STATES,
    TERMINAL_STATES,
    WIRE_SCHEMA_VERSION,
    ClassSummary,
    FleetSummary,
    JobStatus,
    JobSubmit,
    ServiceManifest,
    SessionResult,
    WireFormatError,
    job_spec_from_json,
    job_spec_to_json,
    load_service_manifest,
    percentile,
    session_result_digest,
)

__all__ = [
    "DEFAULT_PORT",
    "JOB_STATES",
    "TERMINAL_STATES",
    "WIRE_SCHEMA_VERSION",
    "ClaimLost",
    "ClassSummary",
    "DaemonHandle",
    "EncodeDaemon",
    "FleetSummary",
    "JobQueue",
    "JobRecord",
    "JobStatus",
    "JobSubmit",
    "QueueFull",
    "ServiceBusy",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceManifest",
    "SessionResult",
    "WireFormatError",
    "job_spec_from_json",
    "job_spec_to_json",
    "load_service_manifest",
    "percentile",
    "serve",
    "session_result_digest",
    "start_daemon",
]
