"""Persistent on-disk job queue with CAS claims and lease recovery.

The durability story of the streaming session service: every job the
daemon accepts becomes a JSON file under ``<dir>/jobs/`` the moment the
submit call returns, and every lifecycle transition rewrites that file
atomically (tempfile + rename, the :class:`~repro.sim.runner.ResultCache`
discipline).  Kill the daemon at any point and reopen the directory:
nothing submitted is lost, running jobs fall back to ``pending`` when
their leases expire, and terminal jobs stay terminal.

Claiming is *compare-and-swap*, not locking: a worker claims job ``J``
by creating ``<dir>/claims/J.claim`` with ``O_CREAT | O_EXCL`` — the
filesystem guarantees exactly one creator wins, however many workers
(threads *or* processes) race for the same job.  The claim file carries
the owner and a lease deadline; a worker that crashes or hangs simply
stops renewing its lease, and :meth:`JobQueue.release_stale` (the
reaper) returns the job to ``pending`` — or to ``quarantined`` once its
fail count exhausts the budget, so a poison job cannot churn the fleet
forever.

States and transitions::

    submit  ->  pending  --claim-->  running  --complete-->  ok | cached
                   ^                    |
                   |                    +--fail/lease-expiry--+
                   +-- fail_count < max_fails ----------------+
                                        |
                        fail_count >= max_fails -> quarantined

Ordering: pending jobs are claimed highest-priority first, ties broken
by submission order (a per-queue monotonic sequence number, not the
wall clock, so equal-timestamp submissions still claim in FIFO order).

Backpressure: ``submit`` raises :class:`QueueFull` once the pending
backlog reaches ``max_pending``; the daemon maps that to HTTP 429 with
a ``Retry-After`` derived from the recent drain rate.

Every transition also lands in ``<dir>/journal.jsonl`` — an append-only
JSONL audit stream (schema-versioned header line first) that ``repro
status --journal`` can render without the daemon running.
"""

from __future__ import annotations

import bisect
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Union

from repro.service.wire import (
    JOB_STATES,
    TERMINAL_STATES,
    WIRE_SCHEMA_VERSION,
    JobStatus,
    JobSubmit,
    WireFormatError,
    check_schema,
)

#: File name of the append-only transition journal inside a queue dir.
JOURNAL_NAME = "journal.jsonl"


class QueueFull(RuntimeError):
    """Backpressure: the pending backlog is at ``max_pending``.

    ``retry_after_s`` is the submit-again hint the daemon forwards as
    the HTTP ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ClaimLost(RuntimeError):
    """A completion/failure report for a claim the reaper already took."""


@dataclass(frozen=True)
class JobRecord:
    """One job's durable state (the content of ``jobs/<id>.json``)."""

    job_id: str
    submit: JobSubmit
    state: str = "pending"
    seq: int = 0
    version: int = 0
    attempts: int = 0
    fail_count: int = 0
    owner: Optional[str] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ValueError(
                f"unknown job state {self.state!r} (known: {JOB_STATES})"
            )

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def priority(self) -> int:
        return self.submit.priority

    def status(self) -> JobStatus:
        """The wire-format snapshot of this record."""
        return JobStatus(
            job_id=self.job_id,
            state=self.state,
            priority=self.submit.priority,
            session_class=self.submit.session_class,
            content_hash=self.submit.spec.content_hash(),
            attempts=self.attempts,
            fail_count=self.fail_count,
            owner=self.owner,
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            error=self.error,
            from_cache=self.state == "cached",
        )

    def to_json(self) -> dict:
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "job_id": self.job_id,
            "submit": self.submit.to_json(),
            "state": self.state,
            "seq": self.seq,
            "version": self.version,
            "attempts": self.attempts,
            "fail_count": self.fail_count,
            "owner": self.owner,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "JobRecord":
        check_schema(record, "JobRecord")
        return cls(
            job_id=record["job_id"],
            submit=JobSubmit.from_json(record["submit"]),
            state=record["state"],
            seq=int(record.get("seq", 0)),
            version=int(record.get("version", 0)),
            attempts=int(record.get("attempts", 0)),
            fail_count=int(record.get("fail_count", 0)),
            owner=record.get("owner"),
            submitted_at=float(record.get("submitted_at", 0.0)),
            started_at=record.get("started_at"),
            finished_at=record.get("finished_at"),
            error=record.get("error"),
        )


class JobQueue:
    """The persistent queue; see the module docstring for the protocol.

    Thread-safe within a process (one lock around scan/transition
    sequences) and safe across processes for the operations that race
    in practice — claims (O_EXCL), record writes (atomic rename) and
    journal appends (``O_APPEND``).

    ``clock`` is injectable so lease-expiry tests do not sleep.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        max_pending: int = 1024,
        lease_s: float = 30.0,
        max_fails: int = 3,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if lease_s <= 0:
            raise ValueError(f"lease_s must be positive, got {lease_s}")
        if max_fails < 1:
            raise ValueError(f"max_fails must be >= 1, got {max_fails}")
        self.directory = Path(directory)
        self.jobs_dir = self.directory / "jobs"
        self.claims_dir = self.directory / "claims"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.claims_dir.mkdir(parents=True, exist_ok=True)
        self.max_pending = max_pending
        self.lease_s = lease_s
        self.max_fails = max_fails
        self.clock = clock
        self._lock = threading.Lock()
        self._journal_path = self.directory / JOURNAL_NAME
        if not self._journal_path.exists():
            self._append_journal(
                {
                    "type": "header",
                    "schema_version": WIRE_SCHEMA_VERSION,
                    "format": "repro-service-journal",
                }
            )
        self._seq = self._recover_seq()
        # In-memory claim index: (-priority, seq, job_id) of pending
        # jobs, kept sorted so a claim pops the best candidate without
        # re-reading every record.  Authoritative for the transitions
        # this instance performs; claims raced from *other* processes
        # are caught by the CAS + record re-read, and externally
        # submitted jobs are picked up by the throttled rebuild below.
        self._index_rescan_s = 0.5
        self._last_rebuild = float("-inf")
        self._pending_index: list[tuple[int, int, str]] = []
        self._rebuild_index()

    # -- storage primitives -------------------------------------------------

    def _job_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _claim_path(self, job_id: str) -> Path:
        return self.claims_dir / f"{job_id}.claim"

    def _write_record(self, record: JobRecord) -> None:
        path = self._job_path(record.job_id)
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        tmp.write_text(
            json.dumps(record.to_json(), separators=(",", ":")) + "\n",
            encoding="utf-8",
        )
        tmp.replace(path)

    def _read_record(self, job_id: str) -> JobRecord:
        path = self._job_path(job_id)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise KeyError(f"no such job: {job_id}") from None
        try:
            return JobRecord.from_json(json.loads(text))
        except (json.JSONDecodeError, WireFormatError, KeyError) as error:
            raise WireFormatError(
                f"corrupt job record {path}: {error}"
            ) from error

    def _append_journal(self, record: Mapping[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with open(self._journal_path, "a", encoding="utf-8") as handle:
            handle.write(line)

    def _journal_transition(self, record: JobRecord, event: str) -> None:
        self._append_journal(
            {
                "type": "event",
                "event": event,
                "job_id": record.job_id,
                "state": record.state,
                "session_class": record.submit.session_class,
                "priority": record.submit.priority,
                "attempts": record.attempts,
                "fail_count": record.fail_count,
                "owner": record.owner,
                "ts": self.clock(),
            }
        )

    def _recover_seq(self) -> int:
        highest = -1
        for path in self.jobs_dir.glob("*.json"):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
                highest = max(highest, int(record.get("seq", 0)))
            except (OSError, ValueError):
                continue
        return highest + 1

    # -- CAS primitives -----------------------------------------------------

    def _try_claim_file(
        self, job_id: str, owner: str, expires_at: float
    ) -> bool:
        """The compare-and-swap: exactly one O_EXCL creator wins."""
        payload = json.dumps(
            {"owner": owner, "expires_at": expires_at},
            separators=(",", ":"),
        )
        try:
            fd = os.open(
                self._claim_path(job_id),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                0o644,
            )
        except FileExistsError:
            return False
        try:
            os.write(fd, payload.encode("utf-8"))
        finally:
            os.close(fd)
        return True

    def _read_claim(self, job_id: str) -> Optional[dict]:
        try:
            return json.loads(
                self._claim_path(job_id).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError):
            return None

    def _owns_claim(self, job_id: str, owner: str) -> bool:
        claim = self._read_claim(job_id)
        return claim is not None and claim.get("owner") == owner

    def _release_claim(self, job_id: str) -> None:
        self._claim_path(job_id).unlink(missing_ok=True)

    # -- pending index ------------------------------------------------------

    def _index_add(self, record: JobRecord) -> None:
        bisect.insort(
            self._pending_index, (-record.priority, record.seq, record.job_id)
        )

    def _rebuild_index(self) -> None:
        self._pending_index = [
            (-r.priority, r.seq, r.job_id) for r in self._pending_records()
        ]
        self._pending_index.sort()
        self._last_rebuild = self.clock()

    # -- public API ---------------------------------------------------------

    def submit(
        self,
        submit: JobSubmit,
        job_id: Optional[str] = None,
    ) -> JobRecord:
        """Enqueue one job; raises :class:`QueueFull` at the backlog cap."""
        now = self.clock()
        with self._lock:
            backlog = len(self._pending_index)
            if backlog >= self.max_pending:
                raise QueueFull(
                    f"queue full: {backlog} pending >= "
                    f"max_pending={self.max_pending}",
                    retry_after_s=max(0.1, self.lease_s / 10.0),
                )
            record = JobRecord(
                job_id=job_id or uuid.uuid4().hex[:16],
                submit=submit,
                state="pending",
                seq=self._seq,
                submitted_at=now,
            )
            if self._job_path(record.job_id).exists():
                raise ValueError(f"duplicate job_id: {record.job_id}")
            self._seq += 1
            self._write_record(record)
            self._index_add(record)
            self._journal_transition(record, "submitted")
            return record

    def claim(self, owner: str) -> Optional[JobRecord]:
        """Claim the best pending job for ``owner``, or None when idle."""
        batch = self.claim_batch(owner, 1)
        return batch[0] if batch else None

    def claim_batch(self, owner: str, limit: int = 1) -> list[JobRecord]:
        """Claim up to ``limit`` pending jobs, highest-priority first.

        Races for each candidate via the O_EXCL claim file; a CAS win
        *is* the claim.  A job whose record turns out not-pending after
        the CAS (another process transitioned it meanwhile) releases
        the claim and moves on — the claim file arbitrates, the record
        confirms.  One sorted-index pass claims the whole batch, so a
        daemon draining thousands of sessions does not re-scan the
        directory per claim.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        now = self.clock()
        claimed: list[JobRecord] = []
        with self._lock:
            if (
                not self._pending_index
                and now - self._last_rebuild >= self._index_rescan_s
            ):
                self._rebuild_index()
            keep: list[tuple[int, int, str]] = []
            for position, entry in enumerate(self._pending_index):
                if len(claimed) >= limit:
                    keep.extend(self._pending_index[position:])
                    break
                job_id = entry[2]
                if not self._try_claim_file(job_id, owner, now + self.lease_s):
                    continue  # raced and lost: drop the stale entry
                try:
                    current = self._read_record(job_id)
                except (KeyError, WireFormatError):
                    self._release_claim(job_id)
                    continue
                if current.state != "pending":
                    self._release_claim(job_id)
                    continue
                running = replace(
                    current,
                    state="running",
                    version=current.version + 1,
                    attempts=current.attempts + 1,
                    owner=owner,
                    started_at=now,
                    error=None,
                )
                self._write_record(running)
                self._journal_transition(running, "claimed")
                claimed.append(running)
            self._pending_index = keep
        return claimed

    def heartbeat(self, job_id: str, owner: str) -> bool:
        """Extend ``owner``'s lease; False when the claim is gone."""
        now = self.clock()
        with self._lock:
            if not self._owns_claim(job_id, owner):
                return False
            path = self._claim_path(job_id)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(
                json.dumps(
                    {"owner": owner, "expires_at": now + self.lease_s},
                    separators=(",", ":"),
                ),
                encoding="utf-8",
            )
            tmp.replace(path)
            return True

    def complete(
        self, job_id: str, owner: str, *, from_cache: bool = False
    ) -> JobRecord:
        """Mark a claimed job done; raises :class:`ClaimLost` when the
        reaper released the claim first (the job will re-run — report
        nothing, execute-at-least-once is the queue's contract)."""
        now = self.clock()
        with self._lock:
            record = self._read_record(job_id)
            if not self._owns_claim(job_id, owner) or record.owner != owner:
                raise ClaimLost(
                    f"claim on {job_id} no longer held by {owner}"
                )
            done = replace(
                record,
                state="cached" if from_cache else "ok",
                version=record.version + 1,
                finished_at=now,
            )
            self._write_record(done)
            self._release_claim(job_id)
            self._journal_transition(done, "completed")
            return done

    def fail(self, job_id: str, owner: str, error: str) -> JobRecord:
        """Report a claimed job's failure: requeue or quarantine."""
        now = self.clock()
        with self._lock:
            record = self._read_record(job_id)
            if not self._owns_claim(job_id, owner) or record.owner != owner:
                raise ClaimLost(
                    f"claim on {job_id} no longer held by {owner}"
                )
            failed = self._fail_locked(record, error, now)
            self._release_claim(job_id)
            return failed

    def _fail_locked(
        self, record: JobRecord, error: str, now: float
    ) -> JobRecord:
        fail_count = record.fail_count + 1
        if fail_count >= self.max_fails:
            failed = replace(
                record,
                state="quarantined",
                version=record.version + 1,
                fail_count=fail_count,
                finished_at=now,
                error=error,
            )
            event = "quarantined"
        else:
            failed = replace(
                record,
                state="pending",
                version=record.version + 1,
                fail_count=fail_count,
                owner=None,
                started_at=None,
                error=error,
            )
            event = "requeued"
        self._write_record(failed)
        if failed.state == "pending":
            self._index_add(failed)
        self._journal_transition(failed, event)
        return failed

    def release_stale(self) -> list[str]:
        """The reaper: release every claim whose lease expired.

        A worker that hung or died without reporting stops renewing its
        lease; its job goes back to ``pending`` (fail count +1) or to
        ``quarantined`` when the budget is spent.  Returns the affected
        job ids.
        """
        now = self.clock()
        released = []
        with self._lock:
            for path in sorted(self.claims_dir.glob("*.claim")):
                job_id = path.stem
                claim = self._read_claim(job_id)
                if claim is None or claim.get("expires_at", 0) > now:
                    continue
                try:
                    record = self._read_record(job_id)
                except (KeyError, WireFormatError):
                    self._release_claim(job_id)
                    continue
                if record.state == "running":
                    self._fail_locked(
                        record,
                        f"lease expired (worker {record.owner} silent "
                        f"for > {self.lease_s:g}s)",
                        now,
                    )
                self._release_claim(job_id)
                released.append(job_id)
        return released

    # -- introspection ------------------------------------------------------

    def _records(self) -> list[JobRecord]:
        records = []
        for path in self.jobs_dir.glob("*.json"):
            try:
                records.append(self._read_record(path.stem))
            except (KeyError, WireFormatError):
                continue  # a submit mid-rename; the next scan sees it
        records.sort(key=lambda r: (r.seq, r.job_id))
        return records

    def _pending_records(self) -> list[JobRecord]:
        pending = [r for r in self._records() if r.state == "pending"]
        pending.sort(key=lambda r: (-r.priority, r.seq, r.job_id))
        return pending

    def get(self, job_id: str) -> JobRecord:
        return self._read_record(job_id)

    def records(self) -> list[JobRecord]:
        """Every job record, in submission order."""
        return self._records()

    def statuses(self) -> list[JobStatus]:
        """Wire-format snapshots of every job, in submission order."""
        return [record.status() for record in self._records()]

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self._records():
            counts[record.state] = counts.get(record.state, 0) + 1
        return counts

    def pending_count(self) -> int:
        return sum(1 for r in self._records() if r.state == "pending")

    def depth(self) -> int:
        """Backlog the fleet still owes: pending + running."""
        return sum(
            1 for r in self._records() if r.state in ("pending", "running")
        )

    def drained(self) -> bool:
        return self.depth() == 0
