"""The long-lived encode daemon: ``repro serve``.

An asyncio service that turns the batch grid runner into a streaming
session service: clients submit simulate/sweep jobs over a local
HTTP+JSONL API, a persistent :class:`~repro.service.queue.JobQueue`
makes every accepted job durable, and dispatcher tasks drain the queue
through the existing chunked :func:`~repro.sim.runner.run_grid` pool —
with the encode-once stream cache underneath, so concurrent sessions
that share an encode configuration share the encode work.

Wire format: every request and response body is a schema-versioned
record from :mod:`repro.service.wire`; list endpoints stream JSONL
(``application/x-ndjson``), one record per line.

Routes (all under the versioned ``/v1`` prefix)::

    GET  /v1/health        liveness + queue depths + drain state
    POST /v1/jobs          submit one JobSubmit or {"jobs": [...]}
                           (202; 429 + Retry-After on backpressure;
                            503 once draining)
    GET  /v1/jobs          JSONL stream of every JobStatus
    GET  /v1/jobs/<id>     one JobStatus
    GET  /v1/results/<id>  one SessionResult (409 until terminal)
    GET  /v1/summary       FleetSummary percentiles per session class
    GET  /v1/manifest      ServiceManifest (every submission accounted)
    GET  /v1/metrics       obs MetricsRegistry snapshot
    POST /v1/drain         stop accepting, finish the backlog
    POST /v1/shutdown      drain bypass: write the manifest and exit

Execution model: each of ``service_workers`` dispatcher tasks claims up
to ``batch_size`` jobs (CAS, priority order), heartbeats their leases,
and runs the batch via ``run_grid`` in a thread-pool executor under the
daemon's shared result/stream caches.  Failures feed the queue's
requeue/quarantine path; a reaper task releases the leases of silent
workers.  Observability: per-session spans land in the runner trace
directory when the :class:`~repro.sim.runner.RunnerOptions` asks for
tracing, and the daemon's :class:`~repro.obs.MetricsRegistry` tracks
queue depth, claims, completions and per-session latency.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional, Union

from repro.obs import MetricsRegistry
from repro.service.queue import ClaimLost, JobQueue, QueueFull
from repro.service.wire import (
    WIRE_SCHEMA_VERSION,
    FleetSummary,
    JobStatus,
    JobSubmit,
    ServiceManifest,
    SessionResult,
    WireFormatError,
)
from repro.sim.runner import (
    JobFailure,
    JobResult,
    JobSpec,
    RunnerOptions,
    run_grid,
)

#: Default TCP port of the local service (0 = ephemeral).
DEFAULT_PORT = 8753

#: File name of the durable accounting manifest inside the queue dir.
SERVICE_MANIFEST_NAME = "service_manifest.json"

_MAX_BODY_BYTES = 64 * 1024 * 1024
_HTTP_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServiceError(Exception):
    """An HTTP-mapped request failure."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` needs to run one daemon.

    Attributes:
        queue_dir: the persistent queue directory (jobs survive
            restarts; reopen the same directory to resume).
        host, port: listen address; port 0 binds an ephemeral port
            (the bound port is reported by :attr:`EncodeDaemon.port`).
        runner: execution options shared with the batch CLI verbs —
            worker count, caches, retries, timeouts, fault plans.
        service_workers: concurrent dispatcher tasks (each runs one
            claimed batch at a time).
        batch_size: jobs claimed per dispatch; batching feeds the
            chunked ``run_grid`` pool and keeps equal-encode sessions
            together on the stream cache.
        max_pending: queue backlog bound — submissions beyond it get
            HTTP 429 with a Retry-After hint.
        lease_s: claim lease; a worker silent for longer loses its jobs
            to the reaper.
        max_fails: failures (including lease expiries) before a job is
            quarantined.
        poll_s: dispatcher idle poll interval.
        manifest_path: where the durable :class:`ServiceManifest` is
            written on drain/shutdown (default:
            ``<queue_dir>/service_manifest.json``).
    """

    queue_dir: Union[str, Path] = ".repro_service"
    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    runner: RunnerOptions = field(default_factory=RunnerOptions)
    service_workers: int = 1
    batch_size: int = 8
    max_pending: int = 1024
    lease_s: float = 30.0
    max_fails: int = 3
    poll_s: float = 0.05
    manifest_path: Optional[Union[str, Path]] = None

    def __post_init__(self) -> None:
        if self.service_workers < 1:
            raise ValueError(
                f"service_workers must be >= 1, got {self.service_workers}"
            )
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )

    @property
    def resolved_manifest_path(self) -> Path:
        if self.manifest_path is not None:
            return Path(self.manifest_path)
        return Path(self.queue_dir) / SERVICE_MANIFEST_NAME


class EncodeDaemon:
    """The service instance: queue + dispatchers + HTTP front end."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.queue = JobQueue(
            config.queue_dir,
            max_pending=config.max_pending,
            lease_s=config.lease_s,
            max_fails=config.max_fails,
        )
        self.metrics = MetricsRegistry()
        self.cache = config.runner.build_cache()
        self.stream_cache = config.runner.build_stream_cache(self.cache)
        self.results: dict[str, SessionResult] = {}
        self.started_at = time.time()
        self._draining = False
        self._shutdown = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None
        self._port: Optional[int] = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=config.service_workers,
            thread_name_prefix="repro-dispatch",
        )

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (valid once :meth:`run` has started)."""
        if self._port is None:
            raise RuntimeError("daemon is not listening yet")
        return self._port

    @property
    def draining(self) -> bool:
        return self._draining

    async def run(
        self, started: Optional[asyncio.Event] = None
    ) -> ServiceManifest:
        """Serve until shutdown; returns the final manifest.

        ``started`` (when given) is set once the socket is bound and
        the dispatchers are live — the thread-spawn helpers and tests
        wait on it instead of polling the port.
        """
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        workers = [
            asyncio.create_task(self._dispatcher(f"dispatcher-{i}"))
            for i in range(self.config.service_workers)
        ]
        reaper = asyncio.create_task(self._reaper())
        if started is not None:
            started.set()
        try:
            await self._shutdown.wait()
        finally:
            for task in [*workers, reaper]:
                task.cancel()
            await asyncio.gather(*workers, reaper, return_exceptions=True)
            self._server.close()
            await self._server.wait_closed()
            self._executor.shutdown(wait=False, cancel_futures=True)
        manifest = self.manifest()
        manifest.write(self.config.resolved_manifest_path)
        return manifest

    def request_shutdown(self) -> None:
        self._shutdown.set()

    # -- accounting ---------------------------------------------------------

    def summary(self) -> FleetSummary:
        return FleetSummary.build(
            self.queue.statuses(),
            self.results,
            queue_depth=self.queue.depth(),
            uptime_s=time.time() - self.started_at,
        )

    def manifest(self) -> ServiceManifest:
        return ServiceManifest(
            jobs=tuple(self.queue.statuses()), summary=self.summary()
        )

    # -- dispatch loop ------------------------------------------------------

    async def _dispatcher(self, name: str) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if self._draining and self.queue.drained():
                self._shutdown.set()
                return
            batch = self.queue.claim_batch(name, self.config.batch_size)
            self.metrics.gauge("service.queue_depth", self.queue.depth())
            if not batch:
                await asyncio.sleep(self.config.poll_s)
                continue
            self.metrics.inc("service.claims", len(batch))
            heartbeat = asyncio.create_task(
                self._heartbeat(name, [job.job_id for job in batch])
            )
            try:
                outcomes = await loop.run_in_executor(
                    self._executor, self._execute_batch, batch
                )
            finally:
                heartbeat.cancel()
            self._report_batch(name, batch, outcomes)

    async def _heartbeat(self, owner: str, job_ids: list[str]) -> None:
        interval = max(self.config.lease_s / 3.0, 0.05)
        while True:
            await asyncio.sleep(interval)
            for job_id in job_ids:
                self.queue.heartbeat(job_id, owner)

    def _execute_batch(self, batch) -> list[Union[JobResult, JobFailure]]:
        """Run one claimed batch through the shared grid runner.

        Runs in the executor thread.  The daemon's result cache and
        encode-once stream cache are shared across batches, so a
        session whose spec matches previous work is served from cache
        and equal-encode sessions pay for one encode.
        """
        specs = [job.submit.spec for job in batch]
        options = self.config.runner
        return run_grid(
            specs,
            max_workers=options.max_workers,
            cache=self.cache,
            timeout=options.job_timeout,
            trace_dir=options.trace_dir,
            retry=options.retry_policy,
            faults=options.faults,
            stream_cache=self.stream_cache,
            share_streams=options.share_streams,
        )

    def _report_batch(self, owner, batch, outcomes) -> None:
        now = time.time()
        for job, outcome in zip(batch, outcomes):
            try:
                if isinstance(outcome, JobResult):
                    record = self.queue.complete(
                        job.job_id, owner, from_cache=outcome.from_cache
                    )
                    self.results[job.job_id] = SessionResult.from_simulation(
                        job.job_id,
                        job.submit.session_class,
                        outcome.result,
                        wall_time_s=outcome.wall_time_s,
                        latency_s=now - record.submitted_at,
                        attempts=record.attempts,
                        from_cache=outcome.from_cache,
                    )
                    self.metrics.inc("service.completed")
                    self.metrics.observe(
                        "service.session_latency_s",
                        now - record.submitted_at,
                    )
                else:
                    record = self.queue.fail(
                        job.job_id,
                        owner,
                        f"{outcome.error_type}: {outcome.message}",
                    )
                    self.metrics.inc(
                        "service.quarantined"
                        if record.state == "quarantined"
                        else "service.failed"
                    )
            except ClaimLost:
                # The reaper took the lease mid-batch (we looked hung);
                # the job re-runs elsewhere.  Dropping the report is
                # the at-least-once contract.
                self.metrics.inc("service.claims_lost")
        self.metrics.gauge("service.queue_depth", self.queue.depth())

    async def _reaper(self) -> None:
        interval = max(self.config.lease_s / 2.0, 0.1)
        while True:
            await asyncio.sleep(interval)
            released = self.queue.release_stale()
            if released:
                self.metrics.inc("service.stale_releases", len(released))

    # -- HTTP front end -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, headers, body = await self._handle_request(reader)
        except ServiceError as error:
            status = error.status
            headers = dict(error.headers)
            body = _json_bytes(
                {
                    "schema_version": WIRE_SCHEMA_VERSION,
                    "error": str(error),
                    "status": error.status,
                }
            )
        except Exception as error:  # noqa: BLE001 - the server must answer
            status = 500
            headers = {}
            body = _json_bytes(
                {
                    "schema_version": WIRE_SCHEMA_VERSION,
                    "error": f"{type(error).__name__}: {error}",
                    "status": 500,
                }
            )
        headers.setdefault("Content-Type", "application/json")
        reason = _HTTP_REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}"]
        head.extend(f"{k}: {v}" for k, v in headers.items())
        head.append(f"Content-Length: {len(body)}")
        head.append("Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body)
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, str], bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ServiceError(400, "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise ServiceError(400, f"malformed request line: {request_line!r}")
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise ServiceError(413, f"body of {length} bytes is too large")
        if length:
            body = await reader.readexactly(length)
        self.metrics.inc("service.http_requests")
        return self._route(method.upper(), path, body)

    def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, str], bytes]:
        if path == "/v1/health" and method == "GET":
            return 200, {}, _json_bytes(self._health())
        if path == "/v1/jobs" and method == "POST":
            return self._submit(body)
        if path == "/v1/jobs" and method == "GET":
            return (
                200,
                {"Content-Type": "application/x-ndjson"},
                _jsonl_bytes(s.to_json() for s in self.queue.statuses()),
            )
        if path.startswith("/v1/jobs/") and method == "GET":
            return 200, {}, _json_bytes(self._status(path).to_json())
        if path.startswith("/v1/results/") and method == "GET":
            return 200, {}, _json_bytes(self._result(path).to_json())
        if path == "/v1/summary" and method == "GET":
            return 200, {}, _json_bytes(self.summary().to_json())
        if path == "/v1/manifest" and method == "GET":
            return 200, {}, _json_bytes(self.manifest().to_json())
        if path == "/v1/metrics" and method == "GET":
            return (
                200,
                {},
                _json_bytes(
                    {
                        "schema_version": WIRE_SCHEMA_VERSION,
                        **self.metrics.snapshot(),
                    }
                ),
            )
        if path == "/v1/drain" and method == "POST":
            self._draining = True
            return 202, {}, _json_bytes(self._health())
        if path == "/v1/shutdown" and method == "POST":
            self._draining = True
            self.request_shutdown()
            return 202, {}, _json_bytes(self._health())
        if path.startswith("/v1/"):
            raise ServiceError(
                405 if method not in ("GET", "POST") else 404,
                f"no route for {method} {path}",
            )
        raise ServiceError(404, f"unknown path {path!r} (try /v1/health)")

    def _health(self) -> dict[str, Any]:
        counts = self.queue.counts()
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "ok": True,
            "draining": self._draining,
            "drained": self.queue.drained(),
            "queue_depth": self.queue.depth(),
            "pending": counts.get("pending", 0),
            "running": counts.get("running", 0),
            "counts": counts,
            "uptime_s": time.time() - self.started_at,
            "sessions_completed": len(self.results),
        }

    def _submit(self, body: bytes) -> tuple[int, dict[str, str], bytes]:
        if self._draining:
            raise ServiceError(503, "daemon is draining; submissions closed")
        try:
            record = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(400, f"body is not JSON: {error}")
        try:
            if "jobs" in record:
                submits = [JobSubmit.from_json(j) for j in record["jobs"]]
            else:
                submits = [JobSubmit.from_json(record)]
        except (WireFormatError, KeyError, TypeError, ValueError) as error:
            raise ServiceError(400, f"bad JobSubmit: {error}")
        job_ids = []
        try:
            for submit in submits:
                job_ids.append(self.queue.submit(submit).job_id)
        except QueueFull as error:
            response = {
                "schema_version": WIRE_SCHEMA_VERSION,
                "error": str(error),
                "status": 429,
                "job_ids": job_ids,  # accepted before the cap closed
                "retry_after_s": error.retry_after_s,
            }
            return (
                429,
                {"Retry-After": f"{error.retry_after_s:g}"},
                _json_bytes(response),
            )
        self.metrics.inc("service.submitted", len(job_ids))
        self.metrics.gauge("service.queue_depth", self.queue.depth())
        return (
            202,
            {},
            _json_bytes(
                {
                    "schema_version": WIRE_SCHEMA_VERSION,
                    "job_ids": job_ids,
                }
            ),
        )

    def _status(self, path: str) -> JobStatus:
        job_id = path.rsplit("/", 1)[1]
        try:
            return self.queue.get(job_id).status()
        except KeyError:
            raise ServiceError(404, f"no such job: {job_id}")

    def _result(self, path: str) -> SessionResult:
        job_id = path.rsplit("/", 1)[1]
        result = self.results.get(job_id)
        if result is not None:
            return result
        try:
            record = self.queue.get(job_id)
        except KeyError:
            raise ServiceError(404, f"no such job: {job_id}")
        if not record.terminal:
            raise ServiceError(
                409, f"job {job_id} is {record.state}; no result yet"
            )
        raise ServiceError(
            404,
            f"job {job_id} finished {record.state} without a result"
            + (f": {record.error}" if record.error else ""),
        )


def _json_bytes(record: dict) -> bytes:
    return (json.dumps(record, separators=(",", ":")) + "\n").encode("utf-8")


def _jsonl_bytes(records: Iterable[dict]) -> bytes:
    lines = [json.dumps(r, separators=(",", ":")) for r in records]
    return ("\n".join(lines) + "\n").encode("utf-8") if lines else b""


def serve(config: ServiceConfig) -> ServiceManifest:
    """Run a daemon in this thread until shutdown (the CLI entry point)."""
    daemon = EncodeDaemon(config)
    return asyncio.run(daemon.run())


class DaemonHandle:
    """A daemon running on a background thread (tests and benchmarks).

    Use as a context manager::

        with start_daemon(ServiceConfig(queue_dir=tmp)) as handle:
            client = ServiceClient(handle.url)
            ...

    ``stop()`` requests shutdown and joins the thread; the final
    :class:`ServiceManifest` is available as ``handle.manifest``
    afterwards.
    """

    def __init__(self, config: ServiceConfig) -> None:
        import threading

        self.daemon = EncodeDaemon(config)
        self.manifest: Optional[ServiceManifest] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("daemon failed to start within 30s")

    def _run(self) -> None:
        async def main() -> None:
            started = asyncio.Event()
            waiter = asyncio.create_task(started.wait())
            runner = asyncio.create_task(self.daemon.run(started))
            await waiter
            self._loop = asyncio.get_running_loop()
            self._started.set()
            self.manifest = await runner

        try:
            asyncio.run(main())
        except Exception:
            self._started.set()  # unblock the constructor; url will raise
            raise

    @property
    def url(self) -> str:
        return f"http://{self.daemon.config.host}:{self.daemon.port}"

    def stop(self, timeout: float = 30.0) -> Optional[ServiceManifest]:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.daemon.request_shutdown)
        self._thread.join(timeout=timeout)
        return self.manifest

    def __enter__(self) -> "DaemonHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_daemon(config: ServiceConfig) -> DaemonHandle:
    """Start a daemon on a background thread; returns its handle."""
    return DaemonHandle(config)
