"""Synchronous client for the encode daemon's HTTP+JSONL API.

Stdlib-only (``http.client``), because the daemon is a local loopback
service and the container bakes in no HTTP dependencies.  The client
speaks the same schema-versioned wire records as the daemon — every
response passes through the :mod:`repro.service.wire` loaders, so a
version drift surfaces as a :class:`WireFormatError`, not a KeyError
three frames later.

Backpressure contract: ``submit`` retries an HTTP 429 response after
the server's ``Retry-After`` hint (bounded by ``max_wait_s``); any
other non-2xx status raises :class:`ServiceClientError` carrying the
status code and the server's error message.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Any, Iterable, Optional, Sequence, Union

from repro.service.wire import (
    FleetSummary,
    JobStatus,
    JobSubmit,
    ServiceManifest,
    SessionResult,
)


class ServiceClientError(Exception):
    """A request the daemon rejected (or could not be reached)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceBusy(ServiceClientError):
    """Backpressure (HTTP 429) that outlived the retry budget."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(429, message)
        self.retry_after_s = retry_after_s


class ServiceClient:
    """Talk to one daemon at ``url`` (e.g. ``http://127.0.0.1:8753``)."""

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("", "http"):
            raise ValueError(f"only http:// URLs are supported, got {url!r}")
        netloc = parsed.netloc or parsed.path
        self.host, _, port = netloc.partition(":")
        self.port = int(port) if port else 80
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> tuple[int, dict[str, str], bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            connection.request(
                method,
                path,
                body=payload,
                headers={"Content-Type": "application/json"}
                if payload
                else {},
            )
            response = connection.getresponse()
            data = response.read()
            headers = {k.lower(): v for k, v in response.getheaders()}
            return response.status, headers, data
        except (ConnectionError, OSError) as error:
            raise ServiceClientError(
                0, f"cannot reach daemon at {self.host}:{self.port}: {error}"
            )
        finally:
            connection.close()

    def _json(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict[str, Any]:
        status, _headers, data = self._request(method, path, body)
        record = _decode(status, data)
        if status >= 400:
            raise ServiceClientError(
                status, record.get("error", data.decode("utf-8", "replace"))
            )
        return record

    # -- API ----------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._json("GET", "/v1/health")

    def submit(
        self,
        jobs: Union[JobSubmit, Sequence[JobSubmit]],
        *,
        max_wait_s: float = 60.0,
    ) -> list[str]:
        """Enqueue jobs; returns their ids in submission order.

        Splits nothing: the whole request is retried on 429 minus the
        jobs the server already accepted (their ids come back in the
        429 body), so a half-accepted batch is not double-submitted.
        """
        if isinstance(jobs, JobSubmit):
            pending = [jobs]
        else:
            pending = list(jobs)
        accepted: list[str] = []
        deadline = time.monotonic() + max_wait_s
        while pending:
            body = {"jobs": [j.to_json() for j in pending]}
            status, headers, data = self._request("POST", "/v1/jobs", body)
            record = _decode(status, data)
            if status == 429:
                taken = len(record.get("job_ids", []))
                accepted.extend(record.get("job_ids", []))
                pending = pending[taken:]
                retry_after = float(
                    headers.get(
                        "retry-after", record.get("retry_after_s", 1.0)
                    )
                )
                if time.monotonic() + retry_after > deadline:
                    raise ServiceBusy(
                        f"queue full; {len(pending)} jobs still unsubmitted "
                        f"after {max_wait_s:g}s",
                        retry_after,
                    )
                time.sleep(retry_after)
                continue
            if status >= 400:
                raise ServiceClientError(
                    status,
                    record.get("error", data.decode("utf-8", "replace")),
                )
            accepted.extend(record["job_ids"])
            pending = []
        return accepted

    def status(self, job_id: str) -> JobStatus:
        return JobStatus.from_json(self._json("GET", f"/v1/jobs/{job_id}"))

    def jobs(self) -> list[JobStatus]:
        status, _headers, data = self._request("GET", "/v1/jobs")
        if status >= 400:
            record = _decode(status, data)
            raise ServiceClientError(status, record.get("error", ""))
        return [
            JobStatus.from_json(json.loads(line))
            for line in data.decode("utf-8").splitlines()
            if line.strip()
        ]

    def result(self, job_id: str) -> SessionResult:
        return SessionResult.from_json(
            self._json("GET", f"/v1/results/{job_id}")
        )

    def summary(self) -> FleetSummary:
        return FleetSummary.from_json(self._json("GET", "/v1/summary"))

    def manifest(self) -> ServiceManifest:
        return ServiceManifest.from_json(self._json("GET", "/v1/manifest"))

    def metrics(self) -> dict[str, Any]:
        return self._json("GET", "/v1/metrics")

    def drain(self) -> dict[str, Any]:
        return self._json("POST", "/v1/drain")

    def shutdown(self) -> dict[str, Any]:
        return self._json("POST", "/v1/shutdown")

    def wait(
        self,
        job_ids: Iterable[str],
        *,
        timeout: float = 300.0,
        poll_s: float = 0.1,
    ) -> dict[str, JobStatus]:
        """Poll until every job is terminal; returns id → final status.

        Raises :class:`TimeoutError` naming the unfinished jobs if the
        deadline passes first.
        """
        waiting = set(job_ids)
        done: dict[str, JobStatus] = {}
        deadline = time.monotonic() + timeout
        while waiting:
            for status in self.jobs():
                if status.job_id in waiting and status.terminal:
                    done[status.job_id] = status
                    waiting.discard(status.job_id)
            if not waiting:
                break
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"{len(waiting)} jobs still not terminal after "
                    f"{timeout:g}s: {sorted(waiting)[:5]}"
                )
            time.sleep(poll_s)
        return done


def _decode(status: int, data: bytes) -> dict[str, Any]:
    try:
        record = json.loads(data.decode("utf-8")) if data else {}
    except (UnicodeDecodeError, json.JSONDecodeError):
        record = {}
    if not isinstance(record, dict):
        record = {"value": record}
    return record
