"""Schema-versioned wire format of the streaming session service.

Everything that crosses the daemon's HTTP boundary — or lands on disk
as a job record, fleet summary or service manifest — is one of the
typed dataclasses in this module, serialized by its own ``to_json`` and
parsed back by ``from_json``.  The daemon, the :class:`ServiceClient`,
the CLI verbs and the persistent job queue all share this single typed
surface (re-exported through :mod:`repro.api`); nothing on the wire is
ad-hoc.

Versioning follows the trace-schema precedent
(:data:`repro.obs.export.SUPPORTED_TRACE_SCHEMAS`): every record
carries an explicit ``schema_version``, writers always stamp the
current version, and readers accept the current version *and* the one
before it, so a daemon and a client one release apart still interoperate
in both directions.

The vocabulary:

* :class:`JobSubmit` — a request to enqueue one session: a declarative
  :class:`~repro.sim.runner.JobSpec` plus service-level metadata
  (priority, session class).
* :class:`JobStatus` — one job's queue lifecycle snapshot (state,
  attempt/fail counts, claim owner, timestamps, error).
* :class:`SessionResult` — the delivered quality/cost summary of one
  completed session, including a ``result_digest`` that proves the
  daemon's output identical to a batch :func:`~repro.sim.runner.run_grid`
  of the same spec.
* :class:`FleetSummary` — percentile quality and latency per session
  class across the fleet.
* :class:`ServiceManifest` — the durable accounting artifact: every
  submission appears exactly once as ok/cached/failed/quarantined,
  with the fleet summary attached.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, Union

from repro.codec.rate import RateControlConfig
from repro.faults import FaultPlan
from repro.scenarios.pack import ScenarioPack
from repro.sim.pipeline import SimulationConfig, SimulationResult
from repro.sim.runner import JobSpec
from repro.video.synthetic import SyntheticConfig

#: Version stamped on every wire record this module writes.  Bump on
#: incompatible layout changes; readers keep accepting the previous
#: version (see :data:`SUPPORTED_WIRE_SCHEMAS`).
#: Version 2: JobSpec records carry an optional ``rate`` (closed-loop
#: rate control config); v1 records parse with ``rate=None``.
#: Version 3: JobSpec records carry an optional ``scenario`` (channel
#: scenario pack); v2 records parse with ``scenario=None``.
WIRE_SCHEMA_VERSION = 3

#: Wire schema versions the ``from_json`` readers understand: the
#: current version and, once one exists, the version before it.
SUPPORTED_WIRE_SCHEMAS = frozenset(
    v for v in (WIRE_SCHEMA_VERSION - 1, WIRE_SCHEMA_VERSION) if v >= 1
)

#: Queue lifecycle states a job moves through (see
#: :class:`repro.service.queue.JobQueue` for the transitions).
JOB_STATES = ("pending", "running", "ok", "cached", "failed", "quarantined")

#: States that terminate a job's lifecycle.
TERMINAL_STATES = frozenset({"ok", "cached", "failed", "quarantined"})


class WireFormatError(ValueError):
    """A wire record that does not parse under any supported schema."""


def check_schema(record: Mapping[str, Any], what: str) -> int:
    """Validate a record's ``schema_version``; returns the version.

    Raises :class:`WireFormatError` on a missing or unsupported
    version — the error names the record type and the supported set so
    a stale client gets an actionable message, not a KeyError.
    """
    schema = record.get("schema_version")
    if schema not in SUPPORTED_WIRE_SCHEMAS:
        supported = sorted(SUPPORTED_WIRE_SCHEMAS)
        raise WireFormatError(
            f"{what} schema {schema!r} (this reader understands {supported})"
        )
    return schema


# ---------------------------------------------------------------------------
# JobSpec <-> JSON: the declarative cell crosses the wire as plain JSON
# ---------------------------------------------------------------------------


def _flat_to_json(obj: Any) -> Optional[dict]:
    """Render a flat (primitives-only) dataclass as a plain dict."""
    if obj is None:
        return None
    record = {}
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            value = _flat_to_json(value)
        record[f.name] = value
    return record


def _flat_from_json(cls: type, record: Optional[Mapping[str, Any]]):
    """Rebuild a flat dataclass, tolerating unknown keys (forward compat)
    and missing keys (the class defaults fill them)."""
    if record is None:
        return None
    names = {f.name for f in dataclasses.fields(cls)}
    return cls(**{k: v for k, v in record.items() if k in names})


def _config_to_json(config: SimulationConfig) -> dict:
    return {
        "codec": _flat_to_json(config.codec),
        "mtu": config.mtu,
        "device": _flat_to_json(config.device),
        "bad_pixel_threshold": config.bad_pixel_threshold,
    }


def _config_from_json(record: Optional[Mapping[str, Any]]) -> SimulationConfig:
    if record is None:
        return SimulationConfig()
    from repro.codec.types import CodecConfig
    from repro.energy.profiles import DeviceProfile

    defaults = SimulationConfig()
    return SimulationConfig(
        codec=_flat_from_json(CodecConfig, record.get("codec"))
        or defaults.codec,
        mtu=record.get("mtu", defaults.mtu),
        device=_flat_from_json(DeviceProfile, record.get("device"))
        or defaults.device,
        bad_pixel_threshold=record.get(
            "bad_pixel_threshold", defaults.bad_pixel_threshold
        ),
    )


def job_spec_to_json(spec: JobSpec) -> dict:
    """Serialize one grid cell for the wire / the on-disk job record."""
    return {
        "scheme": spec.scheme,
        "plr": spec.plr,
        "channel_seed": spec.channel_seed,
        "sequence": spec.sequence,
        "n_frames": spec.n_frames,
        "synthetic": _flat_to_json(spec.synthetic),
        "granularity": spec.granularity,
        "config": _config_to_json(spec.config),
        "pbpair_kwargs": dict(spec.pbpair_kwargs),
        "faults": spec.faults.to_json() if spec.faults is not None else None,
        "rate": _flat_to_json(spec.rate),
        "scenario": (
            spec.scenario.to_json() if spec.scenario is not None else None
        ),
    }


def job_spec_from_json(record: Mapping[str, Any]) -> JobSpec:
    """Rebuild a :class:`JobSpec` from its wire rendering."""
    faults = record.get("faults")
    scenario = record.get("scenario")
    return JobSpec(
        scheme=record["scheme"],
        plr=float(record.get("plr", 0.1)),
        channel_seed=int(record.get("channel_seed", 0)),
        sequence=record.get("sequence", "foreman"),
        n_frames=int(record.get("n_frames", 90)),
        synthetic=_flat_from_json(SyntheticConfig, record.get("synthetic")),
        granularity=record.get("granularity", "frame"),
        config=_config_from_json(record.get("config")),
        pbpair_kwargs=dict(record.get("pbpair_kwargs", {})),
        faults=FaultPlan.from_json(faults) if faults is not None else None,
        rate=_flat_from_json(RateControlConfig, record.get("rate")),
        scenario=(
            ScenarioPack.from_json(scenario) if scenario is not None else None
        ),
    )


def session_result_digest(result: SimulationResult) -> str:
    """Content digest of everything a session delivered.

    Covers the per-frame observables (sizes, PSNRs, bad pixels, packet
    counts) and the run totals — the full externally visible outcome of
    a simulation.  The daemon stamps it on every
    :class:`SessionResult`; a batch :func:`~repro.sim.runner.run_grid`
    of the same spec produces the same digest exactly when the results
    are identical, which is how the service benchmark proves the
    daemon changes scheduling, never values.
    """
    payload = {
        "frames": [
            [
                f.frame_index,
                f.size_bytes,
                repr(f.psnr_encoder),
                repr(f.psnr_decoder),
                f.bad_pixels,
                f.packets_sent,
                f.packets_lost,
            ]
            for f in result.frames
        ],
        "total_bytes": result.total_bytes,
        "energy": repr(result.energy_joules),
        "lost": len(result.channel_log.lost_packets),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Wire dataclasses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobSubmit:
    """Request to enqueue one session.

    Attributes:
        spec: the declarative grid cell to execute.
        priority: claim order — higher claims first among pending jobs
            (ties broken by submission order).
        session_class: free-form fleet-reporting label ("interactive",
            "bulk", ...); percentiles in :class:`FleetSummary` group by
            it.
    """

    spec: JobSpec
    priority: int = 0
    session_class: str = "standard"

    def to_json(self) -> dict:
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "spec": job_spec_to_json(self.spec),
            "priority": self.priority,
            "session_class": self.session_class,
        }

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "JobSubmit":
        check_schema(record, "JobSubmit")
        return cls(
            spec=job_spec_from_json(record["spec"]),
            priority=int(record.get("priority", 0)),
            session_class=record.get("session_class", "standard"),
        )


@dataclass(frozen=True)
class JobStatus:
    """One job's lifecycle snapshot, as reported by ``GET /v1/jobs``.

    Timestamps are absolute ``time.time()`` seconds; ``latency_s`` is
    the end-to-end submit-to-finish latency once terminal.
    """

    job_id: str
    state: str
    priority: int = 0
    session_class: str = "standard"
    content_hash: str = ""
    attempts: int = 0
    fail_count: int = 0
    owner: Optional[str] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    from_cache: bool = False

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ValueError(
                f"unknown job state {self.state!r} (known: {JOB_STATES})"
            )

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def ok(self) -> bool:
        return self.state in ("ok", "cached")

    @property
    def latency_s(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def to_json(self) -> dict:
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "job_id": self.job_id,
            "state": self.state,
            "priority": self.priority,
            "session_class": self.session_class,
            "content_hash": self.content_hash,
            "attempts": self.attempts,
            "fail_count": self.fail_count,
            "owner": self.owner,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "from_cache": self.from_cache,
        }

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "JobStatus":
        check_schema(record, "JobStatus")
        return cls(
            job_id=record["job_id"],
            state=record["state"],
            priority=int(record.get("priority", 0)),
            session_class=record.get("session_class", "standard"),
            content_hash=record.get("content_hash", ""),
            attempts=int(record.get("attempts", 0)),
            fail_count=int(record.get("fail_count", 0)),
            owner=record.get("owner"),
            submitted_at=float(record.get("submitted_at", 0.0)),
            started_at=record.get("started_at"),
            finished_at=record.get("finished_at"),
            error=record.get("error"),
            from_cache=bool(record.get("from_cache", False)),
        )


@dataclass(frozen=True)
class SessionResult:
    """Delivered quality/cost summary of one completed session."""

    job_id: str
    session_class: str
    scheme: str
    sequence: str
    n_frames: int
    psnr_db: float
    bad_pixels: int
    encoded_bytes: int
    energy_joules: float
    intra_fraction: float
    packets_lost: int
    packets_sent: int
    result_digest: str
    wall_time_s: float = 0.0
    latency_s: float = 0.0
    attempts: int = 1
    from_cache: bool = False

    @classmethod
    def from_simulation(
        cls,
        job_id: str,
        session_class: str,
        result: SimulationResult,
        *,
        wall_time_s: float = 0.0,
        latency_s: float = 0.0,
        attempts: int = 1,
        from_cache: bool = False,
    ) -> "SessionResult":
        """Summarize a :class:`SimulationResult` for the wire."""
        return cls(
            job_id=job_id,
            session_class=session_class,
            scheme=result.strategy_name,
            sequence=result.sequence_name,
            n_frames=result.n_frames,
            psnr_db=result.average_psnr_decoder,
            bad_pixels=result.total_bad_pixels,
            encoded_bytes=result.total_bytes,
            energy_joules=result.energy_joules,
            intra_fraction=result.intra_fraction,
            packets_lost=len(result.channel_log.lost_packets),
            packets_sent=result.channel_log.sent,
            result_digest=session_result_digest(result),
            wall_time_s=wall_time_s,
            latency_s=latency_s,
            attempts=attempts,
            from_cache=from_cache,
        )

    def to_json(self) -> dict:
        record = {"schema_version": WIRE_SCHEMA_VERSION}
        record.update(
            {
                f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)
            }
        )
        return record

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "SessionResult":
        check_schema(record, "SessionResult")
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in record.items() if k in names})


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of ``values``.

    NaN for an empty sample — a fleet summary with no finished sessions
    of a class renders honestly instead of inventing a number.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if not values:
        return math.nan
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return float(ordered[low] * (1 - frac) + ordered[high] * frac)


def _percentiles(values: Sequence[float]) -> dict[str, float]:
    return {
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
    }


@dataclass(frozen=True)
class ClassSummary:
    """Fleet percentiles of one session class."""

    session_class: str
    sessions: int
    ok: int = 0
    cached: int = 0
    failed: int = 0
    quarantined: int = 0
    latency_s: Mapping[str, float] = field(default_factory=dict)
    psnr_db: Mapping[str, float] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "session_class": self.session_class,
            "sessions": self.sessions,
            "ok": self.ok,
            "cached": self.cached,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "latency_s": dict(self.latency_s),
            "psnr_db": dict(self.psnr_db),
        }

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "ClassSummary":
        return cls(
            session_class=record["session_class"],
            sessions=int(record["sessions"]),
            ok=int(record.get("ok", 0)),
            cached=int(record.get("cached", 0)),
            failed=int(record.get("failed", 0)),
            quarantined=int(record.get("quarantined", 0)),
            latency_s=dict(record.get("latency_s", {})),
            psnr_db=dict(record.get("psnr_db", {})),
        )


@dataclass(frozen=True)
class FleetSummary:
    """Percentile quality and latency per session class, fleet-wide."""

    classes: tuple[ClassSummary, ...] = ()
    counts: Mapping[str, int] = field(default_factory=dict)
    queue_depth: int = 0
    uptime_s: float = 0.0

    @property
    def sessions(self) -> int:
        return sum(c.sessions for c in self.classes)

    def to_json(self) -> dict:
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "sessions": self.sessions,
            "counts": dict(self.counts),
            "queue_depth": self.queue_depth,
            "uptime_s": self.uptime_s,
            "classes": [c.to_json() for c in self.classes],
        }

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "FleetSummary":
        check_schema(record, "FleetSummary")
        return cls(
            classes=tuple(
                ClassSummary.from_json(c) for c in record.get("classes", ())
            ),
            counts=dict(record.get("counts", {})),
            queue_depth=int(record.get("queue_depth", 0)),
            uptime_s=float(record.get("uptime_s", 0.0)),
        )

    @classmethod
    def build(
        cls,
        statuses: Sequence[JobStatus],
        results: Mapping[str, SessionResult],
        *,
        queue_depth: int = 0,
        uptime_s: float = 0.0,
    ) -> "FleetSummary":
        """Aggregate job statuses (+ their results) into the summary."""
        counts: dict[str, int] = {}
        by_class: dict[str, list[JobStatus]] = {}
        for status in statuses:
            counts[status.state] = counts.get(status.state, 0) + 1
            by_class.setdefault(status.session_class, []).append(status)
        classes = []
        for name in sorted(by_class):
            members = by_class[name]
            latencies = [
                s.latency_s for s in members if s.latency_s is not None
            ]
            psnrs = [
                results[s.job_id].psnr_db
                for s in members
                if s.job_id in results
            ]
            classes.append(
                ClassSummary(
                    session_class=name,
                    sessions=len(members),
                    ok=sum(1 for s in members if s.state == "ok"),
                    cached=sum(1 for s in members if s.state == "cached"),
                    failed=sum(1 for s in members if s.state == "failed"),
                    quarantined=sum(
                        1 for s in members if s.state == "quarantined"
                    ),
                    latency_s=_percentiles(latencies),
                    psnr_db=_percentiles(psnrs),
                )
            )
        return cls(
            classes=tuple(classes),
            counts=counts,
            queue_depth=queue_depth,
            uptime_s=uptime_s,
        )


@dataclass(frozen=True)
class ServiceManifest:
    """Durable accounting of every submission the service accepted.

    The service-side sibling of :class:`~repro.sim.runner.GridManifest`:
    every job the daemon ever accepted appears exactly once, in one of
    the four terminal states or still pending/running at write time,
    with the fleet summary attached.  ``complete`` is true when every
    job reached ``ok``/``cached``.
    """

    jobs: tuple[JobStatus, ...] = ()
    summary: Optional[FleetSummary] = None

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for job in self.jobs:
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    @property
    def complete(self) -> bool:
        return all(job.ok for job in self.jobs)

    def to_json(self) -> dict:
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "n_jobs": self.n_jobs,
            "complete": self.complete,
            "counts": self.counts,
            "jobs": [job.to_json() for job in self.jobs],
            "summary": (
                self.summary.to_json() if self.summary is not None else None
            ),
        }

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "ServiceManifest":
        check_schema(record, "ServiceManifest")
        summary = record.get("summary")
        return cls(
            jobs=tuple(
                JobStatus.from_json(job) for job in record.get("jobs", ())
            ),
            summary=(
                FleetSummary.from_json(summary)
                if summary is not None
                else None
            ),
        )

    def write(self, path: Union[str, Path]) -> Path:
        """Write the manifest atomically (tempfile + rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(self.to_json(), indent=2) + "\n", encoding="utf-8"
        )
        tmp.replace(path)
        return path


def load_service_manifest(path: Union[str, Path]) -> ServiceManifest:
    """Read a manifest previously written by :meth:`ServiceManifest.write`."""
    return ServiceManifest.from_json(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )
