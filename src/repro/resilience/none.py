"""The "NO" baseline: plain predictive coding, no resilience features.

Frame 0 is intra (there is nothing to predict from); every other frame
is P with purely SAD-driven decisions.  This is the energy/efficiency
reference point of Figure 5.
"""

from __future__ import annotations

from repro.resilience.base import ResilienceStrategy


class NoResilience(ResilienceStrategy):
    """Encode with no error-resilience scheme at all."""

    name = "NO"
