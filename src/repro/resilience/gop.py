"""GOP-N: periodic I-frames.

"GOP-N represents I:P ratio I:N where N is the number of P-frames per a
single I-frame" — i.e. an I-frame every ``N + 1`` frames.  The I-frame
refreshes all error propagation at once, at the cost of a large
periodic bit-rate spike (Fig. 6b) and catastrophic sensitivity to the
loss of the I-frame itself (event e7 in Fig. 6a).
"""

from __future__ import annotations

from repro.codec.types import FrameType
from repro.resilience.base import ResilienceStrategy


class GOPStrategy(ResilienceStrategy):
    """Insert an I-frame every ``p_frames + 1`` frames."""

    def __init__(self, p_frames: int) -> None:
        if p_frames < 1:
            raise ValueError(f"GOP needs >= 1 P-frame per group, got {p_frames}")
        self.p_frames = p_frames
        self.name = f"GOP-{p_frames}"

    def begin_frame(self, frame_index: int) -> FrameType:
        if frame_index % (self.p_frames + 1) == 0:
            return FrameType.I
        return FrameType.P
