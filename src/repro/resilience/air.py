"""AIR-N: adaptive intra refresh.

"AIR inserts a pre-defined number of intra-coded MBs with the highest
sum of absolute differences (SAD) ... from the ME output."  The scheme
is content-aware — it refreshes where the scene is most active — but it
decides *after* motion estimation, so (as the paper stresses) it saves
no ME energy: "AIR consumes a similar amount of the encoding energy
[to] without any error resilient scheme since AIR decides the encoding
mode after motion estimation."
"""

from __future__ import annotations

import numpy as np

from repro.resilience.base import PostMEContext, ResilienceStrategy


class AIRStrategy(ResilienceStrategy):
    """Force N macroblocks of each P-frame to intra, after ME.

    Two selection policies:

    * ``"sad"`` (default, the paper's description): the N macroblocks
      with the highest motion-compensated SAD — content-aware, but it
      can starve quiet regions forever (a macroblock that never ranks
      in the top N is never refreshed).
    * ``"cyclic"`` (the MPEG-4 refresh-map variant the paper cites as
      [5]): a round-robin pointer sweeps the macroblock indices, so
      every macroblock is guaranteed a refresh every
      ``ceil(mb_count / N)`` frames regardless of content.
    """

    post_label = "air"

    def __init__(self, refresh_mbs: int, selection: str = "sad") -> None:
        if refresh_mbs < 1:
            raise ValueError(f"AIR needs >= 1 refresh MB, got {refresh_mbs}")
        if selection not in ("sad", "cyclic"):
            raise ValueError(
                f"selection must be 'sad' or 'cyclic', got {selection!r}"
            )
        self.refresh_mbs = refresh_mbs
        self.selection = selection
        suffix = "" if selection == "sad" else "-cyclic"
        self.name = f"AIR-{refresh_mbs}{suffix}"
        self._next_mb = 0

    def reset(self) -> None:
        self._next_mb = 0

    def post_me_intra(self, context: PostMEContext) -> np.ndarray:
        mask = np.zeros((context.mb_rows, context.mb_cols), dtype=bool)
        candidates = ~context.intra_mask  # only not-already-intra MBs
        n_candidates = int(candidates.sum())
        take = min(self.refresh_mbs, n_candidates)
        if take == 0:
            return mask
        if self.selection == "sad":
            sads = np.where(candidates, context.motion.sads, -1)
            flat = sads.reshape(-1)
            top = np.argpartition(flat, -take)[-take:]
            mask.reshape(-1)[top] = True
            return mask & candidates
        # Cyclic: advance the refresh pointer over all macroblocks; the
        # pointer moves by refresh_mbs per frame whether or not some of
        # its slots were already intra (matching the MPEG-4 map, which
        # marks map entries refreshed either way).
        mb_count = context.mb_rows * context.mb_cols
        indices = [
            (self._next_mb + offset) % mb_count
            for offset in range(self.refresh_mbs)
        ]
        mask.reshape(-1)[indices] = True
        self._next_mb = (self._next_mb + self.refresh_mbs) % mb_count
        return mask & candidates
