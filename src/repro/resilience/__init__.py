"""Error-resilience strategies.

This package implements the paper's four baselines and adapts PBPAIR
(whose probabilistic machinery lives in :mod:`repro.core`) to the same
interface:

* ``NoResilience`` — plain predictive coding ("NO" in the figures).
* ``GOPStrategy`` — periodic I-frames (GOP-N = one I per N P-frames).
* ``AIRStrategy`` — adaptive intra refresh: after motion estimation,
  force the N macroblocks with the highest SAD to intra mode.
* ``PGOPStrategy`` — progressive GOP: refresh N macroblock columns per
  frame, sweeping left to right, with stride-back refreshes that trap
  error propagation across the refreshed region.
* ``PBPAIRStrategy`` — the paper's contribution.

All strategies plug into :class:`repro.codec.encoder.Encoder` through the
hook protocol in :mod:`repro.resilience.base`.
"""

from repro.resilience.base import (
    ResilienceStrategy,
    PreMEContext,
    PostMEContext,
    FrameFeedback,
)
from repro.resilience.none import NoResilience
from repro.resilience.gop import GOPStrategy
from repro.resilience.air import AIRStrategy
from repro.resilience.pgop import PGOPStrategy
from repro.resilience.pbpair_strategy import PBPAIRStrategy
from repro.resilience.registry import build_strategy, STRATEGY_BUILDERS

__all__ = [
    "ResilienceStrategy",
    "PreMEContext",
    "PostMEContext",
    "FrameFeedback",
    "NoResilience",
    "GOPStrategy",
    "AIRStrategy",
    "PGOPStrategy",
    "PBPAIRStrategy",
    "build_strategy",
    "STRATEGY_BUILDERS",
]
