"""Building strategies from the paper's spec strings.

The figures label schemes "NO", "GOP-3", "AIR-24", "PGOP-1", "PBPAIR";
:func:`build_strategy` turns exactly those strings into strategy
objects so benchmark tables can be written in the paper's own
vocabulary.  PBPAIR accepts its tuning knobs as keyword arguments
(``intra_th``, ``plr``, ...), which map onto
:class:`repro.core.pbpair.PBPAIRConfig`.

:func:`strategy_to_spec` is the inverse: it reduces a built strategy
back to ``(spec string, kwargs)`` plain data.  That round-trip is what
lets the parallel runner (:mod:`repro.sim.runner`) describe any
registry-built scheme declaratively — a spec string and a kwargs dict
pickle to worker processes and hash into cache keys; a live, stateful
strategy object should not.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict

from repro.core.pbpair import PBPAIRConfig
from repro.resilience.air import AIRStrategy
from repro.resilience.base import ResilienceStrategy
from repro.resilience.gop import GOPStrategy
from repro.resilience.none import NoResilience
from repro.resilience.pbpair_strategy import PBPAIRStrategy
from repro.resilience.pgop import PGOPStrategy


def _build_no(parameter: int | None, **_: object) -> ResilienceStrategy:
    if parameter is not None:
        raise ValueError("NO takes no numeric parameter")
    return NoResilience()


def _build_gop(parameter: int | None, **_: object) -> ResilienceStrategy:
    if parameter is None:
        raise ValueError("GOP needs a parameter, e.g. 'GOP-3'")
    return GOPStrategy(parameter)


def _build_air(
    parameter: int | None, variant: str | None = None, **_: object
) -> ResilienceStrategy:
    if parameter is None:
        raise ValueError("AIR needs a parameter, e.g. 'AIR-24'")
    selection = variant or "sad"
    return AIRStrategy(parameter, selection=selection)


def _build_pgop(parameter: int | None, **_: object) -> ResilienceStrategy:
    if parameter is None:
        raise ValueError("PGOP needs a parameter, e.g. 'PGOP-3'")
    return PGOPStrategy(parameter)


def _build_pbpair(parameter: int | None, **kwargs: object) -> ResilienceStrategy:
    if parameter is not None:
        raise ValueError(
            "PBPAIR takes keyword arguments (intra_th=..., plr=...), "
            "not a numeric suffix"
        )
    config = PBPAIRConfig(**kwargs)  # type: ignore[arg-type]
    return PBPAIRStrategy(config)


STRATEGY_BUILDERS: Dict[str, Callable[..., ResilienceStrategy]] = {
    "NO": _build_no,
    "GOP": _build_gop,
    "AIR": _build_air,
    "PGOP": _build_pgop,
    "PBPAIR": _build_pbpair,
}


def build_strategy(spec: str, **kwargs: object) -> ResilienceStrategy:
    """Build a strategy from a figure-style spec string.

    Examples::

        build_strategy("NO")
        build_strategy("GOP-3")
        build_strategy("AIR-24")
        build_strategy("AIR-10-cyclic")
        build_strategy("PGOP-1")
        build_strategy("PBPAIR", intra_th=0.35, plr=0.1)
    """
    spec = spec.strip()
    name, _, suffix = spec.partition("-")
    name = name.upper()
    if name not in STRATEGY_BUILDERS:
        known = ", ".join(sorted(STRATEGY_BUILDERS))
        raise ValueError(f"unknown strategy {spec!r}; known: {known}")
    parameter: int | None = None
    variant: str | None = None
    if suffix:
        number, _, variant_part = suffix.partition("-")
        try:
            parameter = int(number)
        except ValueError:
            raise ValueError(f"bad numeric suffix in strategy spec {spec!r}")
        if parameter < 1:
            raise ValueError(f"strategy parameter must be >= 1 in {spec!r}")
        if variant_part:
            if name != "AIR":
                raise ValueError(
                    f"only AIR takes a variant suffix, got {spec!r}"
                )
            variant = variant_part.lower()
    if name == "AIR":
        return STRATEGY_BUILDERS[name](parameter, variant=variant, **kwargs)
    return STRATEGY_BUILDERS[name](parameter, **kwargs)


def strategy_to_spec(
    strategy: ResilienceStrategy,
) -> tuple[str, dict[str, object]]:
    """Reduce a registry-built strategy to ``(spec string, kwargs)``.

    The declarative form round-trips:
    ``build_strategy(*_as_args(strategy_to_spec(s)))`` yields a fresh,
    initial-state strategy equivalent to ``s`` as built.  Baselines
    encode everything in their name ("GOP-3", "AIR-10-cyclic", ...);
    PBPAIR returns its :class:`~repro.core.pbpair.PBPAIRConfig` fields
    as kwargs, defaults omitted so the spec stays minimal and its
    content hash stays stable across config-default churn.
    """
    if isinstance(strategy, PBPAIRStrategy):
        kwargs = {
            f.name: getattr(strategy.config, f.name)
            for f in dataclasses.fields(strategy.config)
            if getattr(strategy.config, f.name) != f.default
        }
        return "PBPAIR", kwargs
    name = getattr(strategy, "name", "")
    head = name.partition("-")[0].upper()
    if head not in STRATEGY_BUILDERS:
        raise ValueError(
            f"strategy {type(strategy).__name__} (name={name!r}) did not "
            "come from this registry; cannot express it as a spec string"
        )
    return name, {}
