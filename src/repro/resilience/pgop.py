"""PGOP-N: progressive GOP — column-by-column intra refresh.

PGOP "refreshes intra-coded MBs on a column-by-column basis from left to
right": each P-frame intra-codes the next N macroblock columns of a
sweep, so after ``ceil(mb_cols / N)`` frames the whole frame has been
refreshed without ever paying an I-frame spike.  Refresh columns are
decided *before* motion estimation, so their ME is skipped (some energy
saving, unlike AIR).

**Stride-back** (the paper's footnote 2): errors can out-run the sweep —
a macroblock in an already-refreshed column whose motion vector
references not-yet-refreshed area re-imports possibly corrupt content
into the clean region.  PGOP traps these propagations by re-refreshing
the affected macroblocks; those *do* require their motion vectors, i.e.
their ME energy is spent and then discarded ("it still requires motion
estimation for stride back MBs — this overhead will be larger with a
small number of column refresh").
"""

from __future__ import annotations

import numpy as np

from repro.resilience.base import PostMEContext, PreMEContext, ResilienceStrategy


class PGOPStrategy(ResilienceStrategy):
    """Sweep N intra columns per frame, left to right, with stride-back."""

    post_label = "stride-back"

    def __init__(self, columns_per_frame: int) -> None:
        if columns_per_frame < 1:
            raise ValueError(
                f"PGOP needs >= 1 refresh column, got {columns_per_frame}"
            )
        self.columns_per_frame = columns_per_frame
        self.name = f"PGOP-{columns_per_frame}"
        self._next_col = 0
        self._clean: np.ndarray | None = None
        self._current_refresh: tuple[int, int] = (0, 0)

    def reset(self) -> None:
        self._next_col = 0
        self._clean = None
        self._current_refresh = (0, 0)

    def _ensure_state(self, mb_cols: int) -> None:
        if self._clean is None or self._clean.size != mb_cols:
            self._clean = np.zeros(mb_cols, dtype=bool)
            self._next_col = 0

    def pre_me_intra(self, context: PreMEContext) -> np.ndarray:
        self._ensure_state(context.mb_cols)
        start = self._next_col
        stop = min(start + self.columns_per_frame, context.mb_cols)
        self._current_refresh = (start, stop)
        mask = np.zeros((context.mb_rows, context.mb_cols), dtype=bool)
        mask[:, start:stop] = True
        return mask

    def post_me_intra(self, context: PostMEContext) -> np.ndarray:
        """Stride-back: trap motion that drags dirty content into the
        clean region.

        References point into the *previous* frame, so cleanliness is
        judged against the column state before this frame's refresh
        lands: a macroblock in an already-refreshed column whose motion
        vector overlaps a column the sweep has not reached yet would
        re-import possibly corrupt content, and is re-refreshed.
        """
        assert self._clean is not None
        clean_before = self._clean
        mask = np.zeros((context.mb_rows, context.mb_cols), dtype=bool)
        if clean_before.all() or not clean_before.any():
            return mask

        mvs = context.motion.mvs
        own_col = np.broadcast_to(
            np.arange(context.mb_cols)[None, :],
            (context.mb_rows, context.mb_cols),
        )
        dx_sign = np.sign(mvs[:, :, 1]).astype(np.int64)
        # A reference block (|dx| < 16) overlaps its own column and the
        # neighbour toward the horizontal displacement sign.
        neighbour = np.clip(own_col + dx_sign, 0, context.mb_cols - 1)
        in_clean = clean_before[own_col]
        refs_dirty = ~clean_before[neighbour]
        return in_clean & refs_dirty & ~context.intra_mask

    def frame_done(self, feedback) -> None:
        if self._clean is None:
            return
        start, stop = self._current_refresh
        if feedback.frame_type.is_intra:
            # An intra frame (frame 0) refreshes everything; restart.
            self._clean[:] = False
            self._next_col = 0
            return
        self._clean[start:stop] = True
        self._next_col = stop
        if self._next_col >= self._clean.size:
            # Sweep complete: begin a new progressive GOP.
            self._next_col = 0
            self._clean[:] = False
