"""The strategy protocol between the encoder and resilience schemes.

The encoder drives every scheme through the same four hooks, in the
order the paper's Figure 2 prescribes:

1. :meth:`ResilienceStrategy.begin_frame` — pick the frame type (GOP's
   lever: periodic I-frames).
2. :meth:`ResilienceStrategy.pre_me_intra` — force macroblocks to intra
   *before* motion estimation.  Forced macroblocks skip the search
   entirely; this is where PBPAIR's probability threshold and PGOP's
   refresh columns save energy.
3. :meth:`ResilienceStrategy.me_cost_function` — optionally re-weight
   the ME search (PBPAIR's probability-aware motion vectors).
4. :meth:`ResilienceStrategy.post_me_intra` — force macroblocks to
   intra *after* motion estimation, with the motion field in hand
   (AIR's SAD ranking, PGOP's stride-back).

After encoding each frame the encoder reports back through
:meth:`ResilienceStrategy.frame_done` so stateful schemes (PBPAIR's
correctness matrix, PGOP's sweep position) can advance.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.codec.motion import MECostFunction, MotionField
from repro.codec.types import FrameType, MacroblockMode
from repro.energy.counters import OperationCounters


@dataclass(frozen=True)
class PreMEContext:
    """What a strategy may inspect before motion estimation.

    Attributes:
        frame_index: index of the frame being encoded.
        current: luma being encoded (uint8, read-only by convention).
        previous_reconstruction: the encoder's reconstruction of the
            previous frame (the ME reference), or None for the first
            frame.
        mb_rows, mb_cols: macroblock grid dimensions.
        counters: the encoder's work tally; a strategy that performs
            measurable analysis (e.g. PBPAIR's colocated SAD for the
            similarity factor) must charge it here.
    """

    frame_index: int
    current: np.ndarray
    previous_reconstruction: Optional[np.ndarray]
    mb_rows: int
    mb_cols: int
    counters: OperationCounters


@dataclass(frozen=True)
class PostMEContext:
    """Pre-ME context plus the motion-estimation results.

    Attributes:
        motion: the estimated motion field (SADs are zero for
            macroblocks whose search was skipped).
        sad_self: per-macroblock ``SAD_self`` map.
        intra_mask: macroblocks already committed to intra (pre-ME
            forcing plus the encoder's generic SAD test).
    """

    frame_index: int
    current: np.ndarray
    previous_reconstruction: Optional[np.ndarray]
    mb_rows: int
    mb_cols: int
    counters: OperationCounters
    motion: MotionField
    sad_self: np.ndarray
    intra_mask: np.ndarray


@dataclass(frozen=True)
class FrameFeedback:
    """Per-frame outcome reported back to the strategy.

    Attributes:
        frame_index: index of the frame just encoded.
        frame_type: I or P.
        modes: ``(mb_rows, mb_cols)`` array of final
            :class:`MacroblockMode` values.
        mvs: ``(mb_rows, mb_cols, 2)`` motion field actually coded
            (zeros for intra macroblocks).
        current: the source luma of the frame.
        previous_reconstruction: ME reference used, or None.
        bits: encoded size of the frame in bits.
        counters: the encoder's tally (strategies may charge update
            work, e.g. PBPAIR's probability updates).
    """

    frame_index: int
    frame_type: FrameType
    modes: np.ndarray
    mvs: np.ndarray
    current: np.ndarray
    previous_reconstruction: Optional[np.ndarray]
    bits: int
    counters: OperationCounters


class ResilienceStrategy(abc.ABC):
    """Base class for all error-resilience schemes.

    ``name`` identifies the scheme in reports; ``post_label`` is the
    reason recorded on macroblocks the scheme forces to intra after ME
    (shows up in :class:`repro.codec.types.MacroblockDecision.forced_by`).
    """

    name: str = "base"
    post_label: str = "strategy-post"

    def reset(self) -> None:
        """Return to the initial (sequence start) state."""

    def begin_frame(self, frame_index: int) -> FrameType:
        """Choose the frame type.  Frame 0 is always I (the paper's
        "start from error free image frame"); everything else defaults
        to P."""
        return FrameType.I if frame_index == 0 else FrameType.P

    def pre_me_intra(self, context: PreMEContext) -> np.ndarray:
        """Macroblocks to intra-code *without* running ME.

        Returns a ``(mb_rows, mb_cols)`` bool mask; default none.
        """
        return np.zeros((context.mb_rows, context.mb_cols), dtype=bool)

    def me_cost_function(self) -> Optional[MECostFunction]:
        """Optional ME cost re-weighting; default pure SAD."""
        return None

    def post_me_intra(self, context: PostMEContext) -> np.ndarray:
        """Additional macroblocks to force to intra after ME.

        Returns a ``(mb_rows, mb_cols)`` bool mask; default none.
        """
        return np.zeros((context.mb_rows, context.mb_cols), dtype=bool)

    def frame_done(self, feedback: FrameFeedback) -> None:
        """Advance internal state after a frame is fully encoded."""

    @staticmethod
    def intra_fraction(feedback: FrameFeedback) -> float:
        """Convenience: fraction of macroblocks intra-coded this frame."""
        total = feedback.modes.size
        intra = int(np.sum(feedback.modes == MacroblockMode.INTRA))
        return intra / total if total else 0.0
