"""Adapter wiring the PBPAIR controller into the encoder's hook pipeline.

The probabilistic machinery lives in :mod:`repro.core`; this class maps
it onto the :class:`repro.resilience.base.ResilienceStrategy` protocol:

* ``pre_me_intra`` — the ``sigma < Intra_Th`` threshold test (the early
  decision that skips motion estimation);
* ``me_cost_function`` — the probability-aware search cost;
* ``frame_done`` — the correctness-matrix update with the copy-
  concealment similarity factor, charged to the encoder's counters so
  PBPAIR pays honestly for its bookkeeping.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.codec.blocks import colocated_sad
from repro.codec.motion import MECostFunction
from repro.core.pbpair import PBPAIRConfig, PBPAIRController
from repro.resilience.base import (
    FrameFeedback,
    PreMEContext,
    ResilienceStrategy,
)


class PBPAIRStrategy(ResilienceStrategy):
    """The paper's scheme, as a pluggable resilience strategy."""

    def __init__(self, config: Optional[PBPAIRConfig] = None) -> None:
        self.config = config if config is not None else PBPAIRConfig()
        self.name = "PBPAIR"
        self._controller: Optional[PBPAIRController] = None

    @property
    def controller(self) -> Optional[PBPAIRController]:
        """The live controller (None until the first frame is seen).

        Exposed so applications can adapt ``intra_th``/``plr`` mid-stream
        (the Section 3.2 power-awareness extension).
        """
        return self._controller

    def reset(self) -> None:
        if self._controller is not None:
            self._controller.reset()

    def _ensure_controller(self, mb_rows: int, mb_cols: int) -> PBPAIRController:
        if self._controller is None:
            self._controller = PBPAIRController(self.config, mb_rows, mb_cols)
        return self._controller

    def pre_me_intra(self, context: PreMEContext) -> np.ndarray:
        controller = self._ensure_controller(context.mb_rows, context.mb_cols)
        return controller.select_intra_macroblocks()

    def me_cost_function(self) -> Optional[MECostFunction]:
        if self._controller is None:
            return None
        if self.config.loss_penalty_per_pixel == 0:
            return None  # ablation: probability-aware ME disabled
        return self._controller.me_cost_function()

    def frame_done(self, feedback: FrameFeedback) -> None:
        from repro.codec.types import MacroblockMode

        mb_rows, mb_cols = feedback.modes.shape
        controller = self._ensure_controller(mb_rows, mb_cols)
        if feedback.previous_reconstruction is None:
            similarity_sad = np.zeros((mb_rows, mb_cols), dtype=np.int64)
        else:
            similarity_sad = colocated_sad(
                feedback.current, feedback.previous_reconstruction
            )
            # The similarity factor needs the zero-motion SAD of every
            # macroblock; the motion search already evaluated exactly
            # that block for each searched macroblock (its center
            # candidate), so only the intra (ME-skipped) macroblocks
            # cost a fresh evaluation.
            feedback.counters.sad_blocks += int(
                np.sum(feedback.modes == MacroblockMode.INTRA)
            )
        controller.update_after_frame(feedback.modes, feedback.mvs, similarity_sad)
        feedback.counters.probability_updates += mb_rows * mb_cols
