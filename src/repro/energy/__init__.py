"""Energy accounting substrate.

The paper measures encoder power physically (a DAQ board sampling the
voltage drop across a sense resistor on battery-less PDAs).  That
apparatus is replaced here by *operation counting*: the encoder counts
every energy-relevant operation it performs (SAD block evaluations, DCT/
IDCT blocks, quantization, motion compensation, entropy bits, probability
updates) and a device profile prices each operation class.  Relative
energy between schemes — the quantity the paper reports — is then a
function of how much work each scheme performs, exactly as on the real
devices.  See DESIGN.md, substitution #3.
"""

from repro.energy.counters import OperationCounters
from repro.energy.model import EnergyModel, EnergyBreakdown
from repro.energy.profiles import (
    DeviceProfile,
    IPAQ_H5555,
    ZAURUS_SL5600,
    DEVICE_PROFILES,
)

__all__ = [
    "OperationCounters",
    "EnergyModel",
    "EnergyBreakdown",
    "DeviceProfile",
    "IPAQ_H5555",
    "ZAURUS_SL5600",
    "DEVICE_PROFILES",
]
