"""Pricing operation counts into energy figures."""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.counters import OperationCounters
from repro.energy.profiles import DeviceProfile


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy attributed to each operation class, in joules."""

    device: str
    by_class: dict[str, float]

    @property
    def total_joules(self) -> float:
        return sum(self.by_class.values())

    @property
    def motion_estimation_joules(self) -> float:
        """Energy of SAD work — the component intra refresh eliminates."""
        return self.by_class.get("sad_blocks", 0.0)

    def fraction(self, counter_name: str) -> float:
        total = self.total_joules
        if total == 0:
            return 0.0
        return self.by_class.get(counter_name, 0.0) / total


class EnergyModel:
    """Prices :class:`OperationCounters` with a :class:`DeviceProfile`."""

    def __init__(self, profile: DeviceProfile) -> None:
        self.profile = profile

    def breakdown(self, counters: OperationCounters) -> EnergyBreakdown:
        """Full per-class energy attribution in joules."""
        by_class = {
            name: count * self.profile.cost_of(name) * 1e-6
            for name, count in counters.as_dict().items()
        }
        return EnergyBreakdown(device=self.profile.name, by_class=by_class)

    def joules(self, counters: OperationCounters) -> float:
        """Total energy in joules for the given work tally."""
        return self.breakdown(counters).total_joules
