"""Operation counters threaded through the encoder.

Each field counts one class of energy-relevant work.  The counters are
deliberately *semantic* (blocks, bits) rather than cycle-level so the
encoder stays readable; the device profile owns the per-operation costs.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class OperationCounters:
    """Mutable tally of encoder work.

    Attributes:
        sad_blocks: 16x16 SAD evaluations — ME candidates, ``SAD_self``
            computations, and colocated-SAD content analysis all land
            here.  ME dominates this count; skipping ME (PBPAIR's early
            intra decision, GOP's I-frames, PGOP's refresh columns)
            shrinks it.
        dct_blocks / idct_blocks: 8x8 forward / inverse transforms.
        quant_blocks / dequant_blocks: 8x8 quantization passes.
        mc_blocks: 16x16 motion-compensated block fetches.
        entropy_bits: bits produced by the VLC layer (prices both the
            entropy coding work and, to first order, the bitstream
            handling).
        mode_decisions: per-macroblock control decisions.
        probability_updates: per-macroblock correctness-matrix updates
            (PBPAIR's bookkeeping overhead — charged so the comparison
            against the baselines is honest).
    """

    sad_blocks: int = 0
    dct_blocks: int = 0
    idct_blocks: int = 0
    quant_blocks: int = 0
    dequant_blocks: int = 0
    mc_blocks: int = 0
    entropy_bits: int = 0
    mode_decisions: int = 0
    probability_updates: int = 0

    def add(self, other: "OperationCounters") -> None:
        """Accumulate another tally into this one, in place."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def copy(self) -> "OperationCounters":
        return OperationCounters(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def diff(self, earlier: "OperationCounters") -> "OperationCounters":
        """Work performed since an earlier snapshot."""
        return OperationCounters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def total_operations(self) -> int:
        return sum(self.as_dict().values())
