"""Per-device energy cost profiles.

Costs are in microjoules per operation class.  A 16x16 SAD candidate is
priced well above an 8x8 transform block: on an XScale-class PDA the
SAD streams 512 bytes through a slow SDRAM interface per candidate,
while the integer DCT works register-resident — which is why motion
estimation dominates encode energy there (the paper's central premise:
"motion estimation ... is the most power consuming operation in a
predictive video compression algorithm").  The absolute values put a
plain 300-frame QCIF encode in the paper's measured 10-25 J range; what
the experiments depend on is the ratio structure, not absolute joules.

Both evaluation devices use a 400 MHz Intel XScale PXA25x-class core;
they differ in memory system and platform overhead, which the profiles
express as modest cost differences.  The Zaurus (smaller SDRAM, CF-card
bus) pays slightly more per memory-heavy operation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceProfile:
    """Energy cost of each operation class, in microjoules.

    Attributes mirror :class:`repro.energy.counters.OperationCounters`
    fields one-to-one (``<field>_uj``), plus a device name.
    """

    name: str
    sad_block_uj: float
    dct_block_uj: float
    idct_block_uj: float
    quant_block_uj: float
    dequant_block_uj: float
    mc_block_uj: float
    entropy_bit_uj: float
    mode_decision_uj: float
    probability_update_uj: float

    def cost_of(self, counter_name: str) -> float:
        """Cost in microjoules for one unit of the named counter."""
        mapping = {
            "sad_blocks": self.sad_block_uj,
            "dct_blocks": self.dct_block_uj,
            "idct_blocks": self.idct_block_uj,
            "quant_blocks": self.quant_block_uj,
            "dequant_blocks": self.dequant_block_uj,
            "mc_blocks": self.mc_block_uj,
            "entropy_bits": self.entropy_bit_uj,
            "mode_decisions": self.mode_decision_uj,
            "probability_updates": self.probability_update_uj,
        }
        try:
            return mapping[counter_name]
        except KeyError:
            raise KeyError(f"no energy cost defined for counter {counter_name!r}")


#: HP iPAQ H5555: 400 MHz XScale, 128 MB SDRAM, Familiar Linux.
IPAQ_H5555 = DeviceProfile(
    name="iPAQ H5555",
    sad_block_uj=15.0,
    dct_block_uj=10.0,
    idct_block_uj=10.0,
    quant_block_uj=3.0,
    dequant_block_uj=3.0,
    mc_block_uj=6.0,
    entropy_bit_uj=0.09,
    mode_decision_uj=0.5,
    probability_update_uj=1.0,
)

#: Sharp Zaurus SL-5600: 400 MHz XScale, 32 MB SDRAM, Qtopia.  Slightly
#: higher memory-side cost, slightly cheaper ALU-bound work.
ZAURUS_SL5600 = DeviceProfile(
    name="Zaurus SL-5600",
    sad_block_uj=17.5,
    dct_block_uj=9.5,
    idct_block_uj=9.5,
    quant_block_uj=2.7,
    dequant_block_uj=2.7,
    mc_block_uj=7.0,
    entropy_bit_uj=0.11,
    mode_decision_uj=0.5,
    probability_update_uj=1.0,
)

#: Name → profile registry for the benchmark harness.
DEVICE_PROFILES: dict[str, DeviceProfile] = {
    "ipaq": IPAQ_H5555,
    "zaurus": ZAURUS_SL5600,
}
