"""Declarative, seeded fault plans.

A :class:`FaultPlan` describes *which* failures to inject, *where* in
the pipeline, and *how often* — as plain data, so a plan pickles to
worker processes, hashes stably into the result-cache key, and renders
to/from JSON for the CLI ``--faults`` flag.  The plan itself never
touches packets or processes; :class:`repro.faults.inject.FaultInjector`
interprets it.

Stages mirror the pipeline's own vocabulary:

* ``encode`` — applied to the encoder's output bitstream before
  packetization: bytes rotting in the sender's frame buffer.  Encode
  faults change the *stream itself*, which is why plans carrying them
  opt out of encoded-stream sharing in the grid runner (the fault
  sub-plan is part of the encode cache key, see
  :func:`encode_subplan`).
* ``channel`` — applied to the *delivered* packet stream, after the
  loss model: the failures a wireless receiver hands the depacketizer
  (truncated, reordered, duplicated, bit-rotted, or silently dropped
  packets).
* ``decoder_input`` — applied to fragment payloads after the
  depacketizer: corruption that survives transport checksums and
  reaches the VLD.
* ``runner`` — applied to grid workers by
  :func:`repro.sim.runner.run_grid`: a worker that crashes, hard-exits,
  hangs, or a result-cache entry rotting on disk.

Determinism: every random draw an injector makes comes from
:meth:`FaultPlan.rng`, which derives an independent generator from the
plan seed plus a structural key (stage, fault index, frame index, job
hash) — never from call order or wall clock.  Equal plans therefore
produce identical fault sequences at any worker count.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Union

import numpy as np

#: Stage names (the pipeline points where faults can be injected).
STAGE_ENCODE = "encode"
STAGE_CHANNEL = "channel"
STAGE_DECODER_INPUT = "decoder_input"
STAGE_RUNNER = "runner"

#: Every known fault kind, mapped to the stage it acts on.
KIND_STAGES: Mapping[str, str] = {
    # encode stage: sender-side bitstream corruption pre-packetization
    "encode_byteflip": STAGE_ENCODE,
    # channel stage: packet-stream surgery after the loss model
    "truncate": STAGE_CHANNEL,
    "byteflip": STAGE_CHANNEL,
    "duplicate": STAGE_CHANNEL,
    "reorder": STAGE_CHANNEL,
    "drop": STAGE_CHANNEL,
    # decoder-input stage: fragment payload corruption post-depacketize
    "corrupt_fragment": STAGE_DECODER_INPUT,
    "truncate_fragment": STAGE_DECODER_INPUT,
    # runner stage: worker-process and cache failures
    "worker_crash": STAGE_RUNNER,
    "worker_exit": STAGE_RUNNER,
    "worker_hang": STAGE_RUNNER,
    "poison_cache": STAGE_RUNNER,
}

#: Runner-stage kinds that fire *inside* a worker attempt.
WORKER_FAULT_KINDS = frozenset({"worker_crash", "worker_exit", "worker_hang"})


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: a kind, a rate, and kind-specific knobs.

    Attributes:
        kind: one of :data:`KIND_STAGES` (``"truncate"``, ``"byteflip"``,
            ``"worker_crash"``, ...).
        probability: per-target trigger probability in [0, 1] — per
            packet/fragment for pipeline stages, per job for runner
            stages (``reorder`` draws once per frame).
        stage: pipeline stage; derived from ``kind`` automatically and
            validated if given explicitly.
        frames: restrict pipeline-stage faults to these frame indices
            (``None`` = every frame).
        amount: corruption magnitude — bytes flipped per hit
            (``byteflip``/``corrupt_fragment``) or copies inserted
            (``duplicate``).
        max_per_frame: cap on triggers per frame for per-packet kinds.
        times: runner stage only — the fault fires on attempts
            ``1..times`` of a job, so a retrying runner recovers once
            the budget is spent; ``None`` means every attempt (a
            *poison* job that can only be quarantined).
        hang_seconds: sleep length of a ``worker_hang``.
    """

    kind: str
    probability: float = 1.0
    stage: str = ""
    frames: Optional[tuple[int, ...]] = None
    amount: int = 1
    max_per_frame: Optional[int] = None
    times: Optional[int] = 1
    hang_seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in KIND_STAGES:
            known = ", ".join(sorted(KIND_STAGES))
            raise ValueError(f"unknown fault kind {self.kind!r} (known: {known})")
        expected = KIND_STAGES[self.kind]
        if self.stage and self.stage != expected:
            raise ValueError(
                f"fault kind {self.kind!r} belongs to stage {expected!r}, "
                f"not {self.stage!r}"
            )
        object.__setattr__(self, "stage", expected)
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.amount < 1:
            raise ValueError(f"amount must be >= 1, got {self.amount}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be >= 0")
        if self.frames is not None:
            object.__setattr__(self, "frames", tuple(int(f) for f in self.frames))

    def applies_to_frame(self, frame_index: int) -> bool:
        return self.frames is None or frame_index in self.frames

    def applies_to_attempt(self, attempt: int) -> bool:
        return self.times is None or attempt <= self.times

    def to_json(self) -> dict:
        record: dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            # stage is derived from kind (and re-derived on load).
            if f.name in ("kind", "stage") or value == f.default:
                continue
            record[f.name] = list(value) if isinstance(value, tuple) else value
        return record

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "FaultSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(record) - known
        if unknown:
            raise ValueError(f"unknown FaultSpec fields: {sorted(unknown)}")
        kwargs = dict(record)
        if "frames" in kwargs and kwargs["frames"] is not None:
            kwargs["frames"] = tuple(kwargs["frames"])
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded bundle of :class:`FaultSpec` entries.

    The plan is the unit that travels: ``simulate(..., faults=plan)``,
    ``JobSpec(..., faults=plan)``, ``run_grid(..., faults=plan)`` and
    the CLI ``--faults`` flag all accept one.
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"faults must be FaultSpec, got {type(spec)!r}")

    def __bool__(self) -> bool:
        return bool(self.faults)

    def for_stage(self, stage: str) -> list[tuple[int, FaultSpec]]:
        """(plan index, spec) pairs for one stage; indices key the RNG."""
        return [
            (index, spec)
            for index, spec in enumerate(self.faults)
            if spec.stage == stage
        ]

    def rng(self, *key: Union[str, int]) -> np.random.Generator:
        """An independent generator for one structural injection point.

        The stream depends only on ``(seed, *key)`` — not on how many
        draws other injection points made — so fault decisions commute
        across frames, jobs and worker counts.
        """
        material = json.dumps([self.seed, *key], separators=(",", ":"))
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "big"))

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [spec.to_json() for spec in self.faults],
        }

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "FaultPlan":
        faults = tuple(
            FaultSpec.from_json(entry) for entry in record.get("faults", ())
        )
        return cls(faults=faults, seed=int(record.get("seed", 0)))


def encode_subplan(plan: Optional["FaultPlan"]) -> Optional["FaultPlan"]:
    """The encode-stage slice of a plan, or None when it has none.

    The grid runner's encoded-stream sharing is keyed on this: a plan
    whose faults all act on the channel, the decoder input or the
    runner never changes the encoder's output, so its cells may share
    one encoded stream; encode-stage faults corrupt the stream itself,
    so they travel into the encode cache key and disable sharing.
    """
    if plan is None or not plan:
        return None
    specs = tuple(spec for spec in plan.faults if spec.stage == STAGE_ENCODE)
    if not specs:
        return None
    return FaultPlan(faults=specs, seed=plan.seed)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in results and obs traces.

    Attributes:
        kind / stage: which :class:`FaultSpec` fired.
        target: what it hit — ``"packet:<seq>"``, ``"fragment:<i>"``,
            ``"job:<hash prefix>"``, ``"cache:<hash prefix>"``.
        frame_index: frame the fault landed on (pipeline stages only).
        detail: kind-specific numbers (bytes cut, bits flipped, ...).
    """

    kind: str
    stage: str
    target: str
    frame_index: Optional[int] = None
    detail: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "detail", dict(self.detail))

    def to_json(self) -> dict:
        record: dict[str, Any] = {
            "kind": self.kind,
            "stage": self.stage,
            "target": self.target,
        }
        if self.frame_index is not None:
            record["frame_index"] = self.frame_index
        if self.detail:
            record["detail"] = dict(self.detail)
        return record


def parse_fault_plan(text: str, seed: int = 0) -> FaultPlan:
    """Build a plan from a CLI argument.

    Three accepted forms:

    * a path to a JSON file holding :meth:`FaultPlan.to_json` output,
    * an inline JSON object (starts with ``{``),
    * a compact comma list of ``kind[:probability]`` tokens, e.g.
      ``"truncate:0.3,byteflip,worker_crash"``.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty fault plan")
    if text.startswith("{"):
        return FaultPlan.from_json(json.loads(text))
    path = Path(text)
    if text.endswith(".json") or path.is_file():
        return FaultPlan.from_json(json.loads(path.read_text(encoding="utf-8")))
    specs = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        kind, _, prob = token.partition(":")
        specs.append(
            FaultSpec(kind=kind, probability=float(prob) if prob else 1.0)
        )
    plan = FaultPlan(faults=tuple(specs), seed=seed)
    if not plan:
        raise ValueError(f"fault plan {text!r} names no faults")
    return plan


def load_fault_plan(path: Union[str, Path]) -> FaultPlan:
    """Read a plan previously saved with :meth:`FaultPlan.to_json`."""
    return FaultPlan.from_json(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )


def write_fault_plan(path: Union[str, Path], plan: FaultPlan) -> Path:
    """Save ``plan`` as JSON; round-trips through :func:`load_fault_plan`."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(plan.to_json(), indent=2) + "\n", encoding="utf-8")
    return path
