"""repro.faults — deterministic fault injection for the whole pipeline.

The PBPAIR argument is about graceful behaviour under loss; this package
makes the harness itself provable under *failure*.  A seeded,
declarative :class:`FaultPlan` injects faults at named pipeline stages —
packet truncation/reordering/duplication/byte-flips after the channel
model, fragment corruption at the decoder input, and worker
crash/hang/poison-cache faults at the experiment runner — with every
injection recorded as a structured :class:`FaultEvent` in both the
simulation result and the obs trace.

The consumers are hardened against everything a plan can inject:
:class:`repro.codec.decoder.Decoder` conceals damaged fragments and
keeps decoding, and :func:`repro.sim.runner.run_grid` retries with
backoff, quarantines poison jobs, and reports partial grids through a
machine-readable failure manifest.
"""

from repro.faults.inject import (
    FaultInjector,
    InjectedFault,
    InjectedWorkerCrash,
    inject_faults,
)
from repro.faults.plan import (
    KIND_STAGES,
    STAGE_CHANNEL,
    STAGE_DECODER_INPUT,
    STAGE_ENCODE,
    STAGE_RUNNER,
    WORKER_FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    encode_subplan,
    load_fault_plan,
    parse_fault_plan,
    write_fault_plan,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FaultEvent",
    "FaultInjector",
    "InjectedFault",
    "InjectedWorkerCrash",
    "inject_faults",
    "encode_subplan",
    "parse_fault_plan",
    "load_fault_plan",
    "write_fault_plan",
    "KIND_STAGES",
    "WORKER_FAULT_KINDS",
    "STAGE_ENCODE",
    "STAGE_CHANNEL",
    "STAGE_DECODER_INPUT",
    "STAGE_RUNNER",
]
