"""Fault injection: interpreting a :class:`FaultPlan` against the pipeline.

The :class:`FaultInjector` is the active half of :mod:`repro.faults`: it
holds a plan, applies the plan's channel-stage faults to packet streams
and its decoder-stage faults to fragment payloads, evaluates which
runner-stage faults fire for a worker attempt, and records every
injection as a structured :class:`FaultEvent` — both on its own
``events`` list (which rides :class:`repro.sim.pipeline.SimulationResult`
back to the caller) and, when tracing is on, as an event record in the
obs trace.

Everything here is purely functional over the plan's derived RNG
streams: the same plan applied to the same inputs produces the same
outputs and the same event log, in any process, at any worker count.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.faults.plan import (
    STAGE_CHANNEL,
    STAGE_DECODER_INPUT,
    STAGE_ENCODE,
    STAGE_RUNNER,
    WORKER_FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultSpec,
)
from repro.network.packet import Packet
from repro.obs import get_tracer


class InjectedFault(RuntimeError):
    """Base class of failures raised *on purpose* by a fault plan."""


class InjectedWorkerCrash(InjectedFault):
    """A worker attempt that a plan decided should die."""


class FaultInjector:
    """Applies one :class:`FaultPlan`, recording every injection.

    One injector belongs to one run (its ``events`` list is the run's
    fault log); build a fresh one per simulation.  All methods are
    deterministic functions of ``(plan, inputs)``.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.events: list[FaultEvent] = []

    def _record(
        self,
        spec: FaultSpec,
        target: str,
        frame_index: Optional[int] = None,
        **detail: object,
    ) -> FaultEvent:
        event = FaultEvent(
            kind=spec.kind,
            stage=spec.stage,
            target=target,
            frame_index=frame_index,
            detail=detail,
        )
        self.events.append(event)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("fault", **event.to_json())
        return event

    # ------------------------------------------------------------------
    # Encode stage: sender-side bitstream corruption
    # ------------------------------------------------------------------

    def apply_to_payload(self, payload: bytes, frame_index: int) -> bytes:
        """Apply encode-stage faults to one frame's encoded bitstream.

        Models corruption in the sender's frame buffer *after* the
        encoder reconstructed the frame (the prediction loop stays
        clean) but *before* packetization — every fragment cut from the
        payload carries the rot.
        """
        for index, spec in self.plan.for_stage(STAGE_ENCODE):
            if not spec.applies_to_frame(frame_index) or not payload:
                continue
            rng = self.plan.rng(spec.stage, index, frame_index)
            if rng.random() >= spec.probability:
                continue
            payload, flipped = _flip_bytes(rng, payload, spec.amount)
            self._record(
                spec,
                target=f"payload:{frame_index}",
                frame_index=frame_index,
                flipped_bytes=flipped,
            )
        return payload

    # ------------------------------------------------------------------
    # Channel stage: packet-stream surgery
    # ------------------------------------------------------------------

    def apply_to_packets(
        self, packets: Sequence[Packet], frame_index: int
    ) -> list[Packet]:
        """Apply channel-stage faults to one frame's delivered packets.

        Faults apply in plan order, each over the previous fault's
        output (a duplicated packet can therefore be truncated by a
        later spec — exactly the composability a declarative plan
        promises).
        """
        out = list(packets)
        for index, spec in self.plan.for_stage(STAGE_CHANNEL):
            if not spec.applies_to_frame(frame_index) or not out:
                continue
            rng = self.plan.rng(spec.stage, index, frame_index)
            if spec.kind == "reorder":
                if len(out) > 1 and rng.random() < spec.probability:
                    order = rng.permutation(len(out))
                    out = [out[i] for i in order]
                    self._record(
                        spec,
                        target=f"frame:{frame_index}",
                        frame_index=frame_index,
                        n_packets=len(out),
                    )
                continue
            out = self._apply_per_packet(spec, rng, out, frame_index)
        return out

    def _apply_per_packet(
        self, spec: FaultSpec, rng, packets: list[Packet], frame_index: int
    ) -> list[Packet]:
        result: list[Packet] = []
        hits = 0
        for packet in packets:
            capped = (
                spec.max_per_frame is not None and hits >= spec.max_per_frame
            )
            if capped or rng.random() >= spec.probability:
                result.append(packet)
                continue
            hits += 1
            target = f"packet:{packet.sequence_number}"
            if spec.kind == "drop":
                self._record(spec, target, frame_index)
            elif spec.kind == "duplicate":
                result.append(packet)
                result.extend([packet] * spec.amount)
                self._record(spec, target, frame_index, copies=spec.amount)
            elif spec.kind == "truncate":
                cut = int(rng.integers(0, len(packet.payload) + 1))
                result.append(self._with_payload(packet, packet.payload[:cut]))
                self._record(
                    spec, target, frame_index,
                    kept_bytes=cut, cut_bytes=len(packet.payload) - cut,
                )
            elif spec.kind == "byteflip":
                payload, flipped = _flip_bytes(
                    rng, packet.payload, spec.amount
                )
                result.append(self._with_payload(packet, payload))
                self._record(spec, target, frame_index, flipped_bytes=flipped)
            else:  # pragma: no cover - KIND_STAGES keeps this unreachable
                result.append(packet)
        return result

    @staticmethod
    def _with_payload(packet: Packet, payload: bytes) -> Packet:
        return Packet(
            sequence_number=packet.sequence_number,
            frame_index=packet.frame_index,
            fragment_index=packet.fragment_index,
            fragments_in_frame=packet.fragments_in_frame,
            payload=payload,
        )

    # ------------------------------------------------------------------
    # Decoder-input stage: fragment payload corruption
    # ------------------------------------------------------------------

    def apply_to_fragments(
        self, fragments: Sequence[bytes], frame_index: int
    ) -> list[bytes]:
        """Apply decoder-input faults to one frame's fragment payloads."""
        out = list(fragments)
        for index, spec in self.plan.for_stage(STAGE_DECODER_INPUT):
            if not spec.applies_to_frame(frame_index) or not out:
                continue
            rng = self.plan.rng(spec.stage, index, frame_index)
            hits = 0
            for position, payload in enumerate(out):
                capped = (
                    spec.max_per_frame is not None
                    and hits >= spec.max_per_frame
                )
                if capped or rng.random() >= spec.probability:
                    continue
                hits += 1
                target = f"fragment:{position}"
                if spec.kind == "truncate_fragment":
                    cut = int(rng.integers(0, len(payload) + 1))
                    out[position] = payload[:cut]
                    self._record(
                        spec, target, frame_index,
                        kept_bytes=cut, cut_bytes=len(payload) - cut,
                    )
                else:  # corrupt_fragment
                    corrupted, flipped = _flip_bytes(rng, payload, spec.amount)
                    out[position] = corrupted
                    self._record(
                        spec, target, frame_index, flipped_bytes=flipped
                    )
        return out

    # ------------------------------------------------------------------
    # Runner stage: worker and cache faults
    # ------------------------------------------------------------------

    def worker_faults(self, job_key: str, attempt: int) -> list[FaultSpec]:
        """Runner faults that fire inside attempt ``attempt`` of a job.

        The probability draw depends on ``(plan, job_key)`` only — a
        job is either fault-afflicted or not — while ``times`` bounds
        how many attempts suffer, so bounded-retry runners recover
        deterministically once the budget is spent.
        """
        fired = []
        for index, spec in self.plan.for_stage(STAGE_RUNNER):
            if spec.kind not in WORKER_FAULT_KINDS:
                continue
            if not spec.applies_to_attempt(attempt):
                continue
            rng = self.plan.rng(spec.stage, index, job_key)
            if rng.random() < spec.probability:
                fired.append(spec)
        return fired

    def poison_cache_faults(self, job_key: str) -> list[FaultSpec]:
        """Poison-cache faults that fire for one job's cache entry."""
        fired = []
        for index, spec in self.plan.for_stage(STAGE_RUNNER):
            if spec.kind != "poison_cache":
                continue
            rng = self.plan.rng(spec.stage, index, job_key)
            if rng.random() < spec.probability:
                fired.append(spec)
        return fired

    def record_runner_fault(
        self, spec: FaultSpec, target: str, **detail: object
    ) -> FaultEvent:
        """Record a runner-stage injection (called by the grid parent)."""
        return self._record(spec, target, frame_index=None, **detail)


def _flip_bytes(rng, payload: bytes, amount: int) -> tuple[bytes, int]:
    """XOR ``amount`` random bytes of ``payload`` with nonzero masks."""
    if not payload:
        return payload, 0
    data = bytearray(payload)
    count = min(amount, len(data))
    positions = rng.choice(len(data), size=count, replace=False)
    for position in positions:
        data[int(position)] ^= int(rng.integers(1, 256))
    return bytes(data), count


def inject_faults(
    packets: Iterable[Packet],
    *,
    plan: FaultPlan,
    frame_index: int = 0,
    injector: Optional[FaultInjector] = None,
) -> tuple[list[Packet], list[FaultEvent]]:
    """One-shot helper: apply a plan's channel faults to a packet list.

    Returns ``(faulted_packets, events)``.  Pass an existing
    ``injector`` to accumulate events across several calls (one per
    frame); otherwise a fresh one is built and discarded.
    """
    injector = injector if injector is not None else FaultInjector(plan)
    before = len(injector.events)
    faulted = injector.apply_to_packets(list(packets), frame_index)
    return faulted, injector.events[before:]
