"""Video substrate: frame containers, raw I/O, and synthetic sequences.

The paper evaluates on the standard QCIF test clips FOREMAN, AKIYO and
GARDEN.  Those clips are not distributable here, so this package provides
seeded synthetic generators with the same *motion and texture profiles*
(see DESIGN.md, substitution #1) plus raw-YUV file I/O so that real clips
can be dropped in when available.
"""

from repro.video.frame import (
    Frame,
    VideoSequence,
    QCIF_WIDTH,
    QCIF_HEIGHT,
    MB_SIZE,
)
from repro.video.synthetic import (
    SyntheticConfig,
    generate_sequence,
    foreman_like,
    akiyo_like,
    garden_like,
    SEQUENCE_GENERATORS,
)
from repro.video.io import (
    read_raw_luma,
    write_raw_luma,
    write_pgm,
    write_ppm,
    yuv420_to_rgb,
)

__all__ = [
    "Frame",
    "VideoSequence",
    "QCIF_WIDTH",
    "QCIF_HEIGHT",
    "MB_SIZE",
    "SyntheticConfig",
    "generate_sequence",
    "foreman_like",
    "akiyo_like",
    "garden_like",
    "SEQUENCE_GENERATORS",
    "read_raw_luma",
    "write_raw_luma",
    "write_pgm",
    "write_ppm",
    "yuv420_to_rgb",
]
