"""Frame and sequence containers.

The codec in this repository works on 8-bit luma frames whose dimensions
are multiples of the macroblock size (16).  The paper's evaluation format
is QCIF (176x144), i.e. an 11x9 grid of 16x16 macroblocks; the constants
below name those numbers once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

#: QCIF luma width in pixels (the paper's evaluation format).
QCIF_WIDTH = 176
#: QCIF luma height in pixels.
QCIF_HEIGHT = 144
#: Macroblock edge length in pixels.
MB_SIZE = 16


@dataclass(frozen=True)
class Frame:
    """A single 8-bit frame: luma, with optional 4:2:0 chroma.

    Attributes:
        pixels: ``(height, width)`` ``uint8`` luma array.  Arrays are
            treated as immutable; helpers always return copies.
        index: position of the frame in its sequence (0-based).
        cb, cr: optional ``(height/2, width/2)`` ``uint8`` chroma
            planes (4:2:0 subsampling).  Either both or neither.
    """

    pixels: np.ndarray
    index: int = 0
    cb: Optional[np.ndarray] = None
    cr: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        pixels = self.pixels
        if pixels.ndim != 2:
            raise ValueError(f"frame must be 2-D luma, got shape {pixels.shape}")
        if pixels.dtype != np.uint8:
            raise TypeError(f"frame pixels must be uint8, got {pixels.dtype}")
        height, width = pixels.shape
        if height % MB_SIZE or width % MB_SIZE:
            raise ValueError(
                f"frame dimensions {width}x{height} are not multiples of "
                f"the macroblock size {MB_SIZE}"
            )
        if (self.cb is None) != (self.cr is None):
            raise ValueError("chroma requires both cb and cr planes")
        if self.cb is not None:
            expected = (height // 2, width // 2)
            for name, plane in (("cb", self.cb), ("cr", self.cr)):
                if plane.shape != expected:
                    raise ValueError(
                        f"{name} plane shape {plane.shape} is not the "
                        f"4:2:0 {expected}"
                    )
                if plane.dtype != np.uint8:
                    raise TypeError(f"{name} plane must be uint8")

    @property
    def has_chroma(self) -> bool:
        return self.cb is not None

    @property
    def width(self) -> int:
        return int(self.pixels.shape[1])

    @property
    def height(self) -> int:
        return int(self.pixels.shape[0])

    @property
    def mb_cols(self) -> int:
        """Number of macroblock columns (11 for QCIF)."""
        return self.width // MB_SIZE

    @property
    def mb_rows(self) -> int:
        """Number of macroblock rows (9 for QCIF)."""
        return self.height // MB_SIZE

    def macroblock(self, row: int, col: int) -> np.ndarray:
        """Return a copy of macroblock ``(row, col)`` as a 16x16 array."""
        if not (0 <= row < self.mb_rows and 0 <= col < self.mb_cols):
            raise IndexError(f"macroblock ({row}, {col}) out of range")
        y, x = row * MB_SIZE, col * MB_SIZE
        return self.pixels[y : y + MB_SIZE, x : x + MB_SIZE].copy()

    def as_float(self) -> np.ndarray:
        """Pixels as ``float64`` (for metric computations)."""
        return self.pixels.astype(np.float64)

    def with_index(self, index: int) -> "Frame":
        """Return the same pixels tagged with a different sequence index."""
        return Frame(self.pixels, index, self.cb, self.cr)


def _validate_frames(frames: Sequence[Frame]) -> None:
    if not frames:
        raise ValueError("a video sequence needs at least one frame")
    width, height = frames[0].width, frames[0].height
    chroma = frames[0].has_chroma
    for frame in frames:
        if frame.width != width or frame.height != height:
            raise ValueError(
                "all frames in a sequence must share dimensions: "
                f"expected {width}x{height}, got {frame.width}x{frame.height}"
            )
        if frame.has_chroma != chroma:
            raise ValueError(
                "all frames in a sequence must agree on carrying chroma"
            )


@dataclass(frozen=True)
class VideoSequence:
    """An ordered collection of equally sized frames.

    Attributes:
        frames: the frames, in display order.
        name: human-readable identifier ("foreman", "akiyo", ...).
        fps: nominal frame rate; only used for reporting bitrates.
    """

    frames: tuple[Frame, ...]
    name: str = "unnamed"
    fps: float = 30.0

    def __post_init__(self) -> None:
        _validate_frames(self.frames)
        if self.fps <= 0:
            raise ValueError(f"fps must be positive, got {self.fps}")

    @classmethod
    def from_arrays(
        cls, arrays: Sequence[np.ndarray], name: str = "unnamed", fps: float = 30.0
    ) -> "VideoSequence":
        """Build a sequence from raw ``uint8`` arrays, indexing them in order."""
        frames = tuple(Frame(np.ascontiguousarray(a), i) for i, a in enumerate(arrays))
        return cls(frames, name=name, fps=fps)

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[Frame]:
        return iter(self.frames)

    def __getitem__(self, index: int) -> Frame:
        return self.frames[index]

    @property
    def width(self) -> int:
        return self.frames[0].width

    @property
    def height(self) -> int:
        return self.frames[0].height

    @property
    def mb_rows(self) -> int:
        return self.frames[0].mb_rows

    @property
    def mb_cols(self) -> int:
        return self.frames[0].mb_cols

    @property
    def has_chroma(self) -> bool:
        return self.frames[0].has_chroma

    def clip(self, n_frames: int) -> "VideoSequence":
        """Return the first ``n_frames`` frames as a new sequence."""
        if n_frames < 1:
            raise ValueError("clip length must be >= 1")
        return VideoSequence(self.frames[:n_frames], name=self.name, fps=self.fps)
