"""Raw luma file I/O.

Real QCIF clips ship as headerless planar YUV (``.qcif``/``.yuv``).  The
experiments here only need luma, so these helpers read and write the
headerless 8-bit luma plane format: ``n_frames * height * width`` bytes.
When a real FOREMAN.QCIF is available its luma plane can be extracted and
loaded with :func:`read_raw_luma` to replace the synthetic stand-ins.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.video.frame import Frame, VideoSequence


def write_raw_luma(sequence: VideoSequence, path: str | os.PathLike[str]) -> int:
    """Write a sequence as a headerless 8-bit luma file.

    Returns the number of bytes written.
    """
    path = Path(path)
    data = np.concatenate([frame.pixels.reshape(-1) for frame in sequence])
    path.write_bytes(data.tobytes())
    return data.size


def read_raw_luma(
    path: str | os.PathLike[str],
    width: int,
    height: int,
    name: str | None = None,
    fps: float = 30.0,
    max_frames: int | None = None,
) -> VideoSequence:
    """Read a headerless 8-bit luma file into a :class:`VideoSequence`.

    Args:
        path: file of ``n * height * width`` bytes.
        width: luma width in pixels (must be a multiple of 16).
        height: luma height in pixels (must be a multiple of 16).
        name: sequence name; defaults to the file stem.
        fps: nominal frame rate.
        max_frames: optionally stop after this many frames.

    Raises:
        ValueError: if the file size is not a whole number of frames.
    """
    path = Path(path)
    raw = np.frombuffer(path.read_bytes(), dtype=np.uint8)
    frame_px = width * height
    if frame_px <= 0:
        raise ValueError("width and height must be positive")
    if raw.size == 0 or raw.size % frame_px:
        raise ValueError(
            f"{path} holds {raw.size} bytes, not a multiple of "
            f"frame size {frame_px}"
        )
    n_frames = raw.size // frame_px
    if max_frames is not None:
        n_frames = min(n_frames, max_frames)
    frames = tuple(
        Frame(raw[i * frame_px : (i + 1) * frame_px].reshape(height, width).copy(), i)
        for i in range(n_frames)
    )
    return VideoSequence(frames, name=name or path.stem, fps=fps)


def write_pgm(frame: Frame, path: str | os.PathLike[str]) -> None:
    """Write a frame's luma as a binary PGM (P5) image.

    PGM needs no image library, so decoded output can be eyeballed in
    any viewer — handy when judging what a loss pattern actually did.
    """
    path = Path(path)
    header = f"P5\n{frame.width} {frame.height}\n255\n".encode("ascii")
    path.write_bytes(header + frame.pixels.tobytes())


def yuv420_to_rgb(frame: Frame) -> np.ndarray:
    """BT.601 conversion to an ``(h, w, 3)`` uint8 RGB array.

    Chroma planes are upsampled 2x nearest-neighbour.  Requires a frame
    with chroma.
    """
    if not frame.has_chroma:
        raise ValueError("frame carries no chroma planes")
    y = frame.pixels.astype(np.float64)
    cb = np.repeat(np.repeat(frame.cb, 2, axis=0), 2, axis=1).astype(np.float64)
    cr = np.repeat(np.repeat(frame.cr, 2, axis=0), 2, axis=1).astype(np.float64)
    r = y + 1.402 * (cr - 128.0)
    g = y - 0.344136 * (cb - 128.0) - 0.714136 * (cr - 128.0)
    b = y + 1.772 * (cb - 128.0)
    rgb = np.stack([r, g, b], axis=-1)
    return np.clip(rgb, 0, 255).astype(np.uint8)


def write_ppm(frame: Frame, path: str | os.PathLike[str]) -> None:
    """Write a chroma-carrying frame as a binary PPM (P6) colour image."""
    rgb = yuv420_to_rgb(frame)
    path = Path(path)
    header = f"P6\n{frame.width} {frame.height}\n255\n".encode("ascii")
    path.write_bytes(header + rgb.tobytes())
