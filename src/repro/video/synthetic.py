"""Seeded synthetic stand-ins for the paper's QCIF test clips.

The paper evaluates on FOREMAN (talking head, moderate motion plus a camera
pan), AKIYO (news anchor, very low motion) and GARDEN (flower garden,
continuous high-detail camera pan).  Those clips cannot be bundled, so this
module synthesizes sequences that reproduce the properties the schemes under
study are sensitive to:

* spatial texture energy (drives intra coding cost and SAD_self),
* global motion (drives motion-vector magnitude and ME difficulty),
* local object motion (drives AIR's SAD ranking and PBPAIR's similarity
  factor),
* temporal stationarity (drives the inter/intra rate gap).

Every generator is deterministic given its seed, so experiments are exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.video.frame import Frame, VideoSequence, QCIF_WIDTH, QCIF_HEIGHT


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of a synthetic sequence.

    Attributes:
        width, height: frame dimensions (multiples of 16).
        n_frames: number of frames to generate.
        texture_scale: standard deviation of the background texture, in
            grey levels.  Higher values make intra coding more expensive.
        texture_smoothness: box-blur radius applied to the background
            noise field; larger values give smoother, lower-frequency
            texture (easier to compress).
        pan_speed: horizontal camera translation in pixels/frame applied
            to the whole scene (GARDEN-style global motion).
        pan_start_frame: frame index at which panning begins (FOREMAN's
            pan only starts near the end of the clip).
        object_radius: radius in pixels of the moving foreground object
            (0 disables the object).
        object_motion_amplitude: peak-to-peak sway of the foreground
            object in pixels (head/shoulder movement).
        object_motion_period: frames per sway cycle.
        sensor_noise: per-frame additive Gaussian noise sigma in grey
            levels (camera noise; keeps inter residuals non-zero).
        texture_drift: peak amplitude, in grey levels, of a smooth
            temporal modulation of the scene texture.  Real clips are
            never perfectly translational between frames (sub-pixel
            motion, lighting, sensor gain), which is what gives inter
            macroblocks their residual cost; this term models that.
            0 disables it.
        texture_drift_period: frames per modulation cycle.
        camera_jitter: standard deviation, in pixels, of a sub-pixel
            hand-held camera shake (random walk, mean-reverting).  Real
            hand-held clips like FOREMAN move globally by fractions of a
            pixel every frame; integer-pel motion estimation cannot
            cancel that, which is a large part of real inter-coding
            cost.  0 disables it.
        chroma: also render 4:2:0 Cb/Cr planes (smooth colour fields
            that pan with the scene, warm-tinted foreground object).
            Off by default: the paper's metrics are luma.
        seed: RNG seed.
    """

    width: int = QCIF_WIDTH
    height: int = QCIF_HEIGHT
    n_frames: int = 300
    texture_scale: float = 40.0
    texture_smoothness: int = 4
    pan_speed: float = 0.0
    pan_start_frame: int = 0
    object_radius: int = 0
    object_motion_amplitude: float = 0.0
    object_motion_period: int = 60
    sensor_noise: float = 1.0
    texture_drift: float = 0.0
    texture_drift_period: int = 50
    camera_jitter: float = 0.0
    chroma: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.width % 16 or self.height % 16:
            raise ValueError("dimensions must be multiples of 16")
        if self.n_frames < 1:
            raise ValueError("n_frames must be >= 1")
        if self.texture_smoothness < 0:
            raise ValueError("texture_smoothness must be >= 0")
        if self.texture_drift < 0:
            raise ValueError("texture_drift must be >= 0")
        if self.texture_drift_period < 1:
            raise ValueError("texture_drift_period must be >= 1")
        if self.camera_jitter < 0:
            raise ValueError("camera_jitter must be >= 0")


def _box_blur(field: np.ndarray, radius: int) -> np.ndarray:
    """Separable box blur via cumulative sums (no scipy dependency)."""
    if radius <= 0:
        return field
    size = 2 * radius + 1
    for axis in (0, 1):
        padded = np.concatenate(
            [
                np.repeat(field.take([0], axis=axis), radius, axis=axis),
                field,
                np.repeat(field.take([-1], axis=axis), radius, axis=axis),
            ],
            axis=axis,
        )
        csum = np.cumsum(padded, axis=axis, dtype=np.float64)
        zero = np.zeros_like(csum.take([0], axis=axis))
        csum = np.concatenate([zero, csum], axis=axis)
        hi = csum.take(range(size, csum.shape[axis]), axis=axis)
        lo = csum.take(range(0, csum.shape[axis] - size), axis=axis)
        field = (hi - lo) / size
    return field


def _world_texture(
    rng: np.random.Generator, height: int, width: int, config: SyntheticConfig
) -> np.ndarray:
    """A static 'world' larger than the frame, to be panned over.

    Combines a smoothed random field (natural texture) with a few sharp
    structured edges (buildings / fence posts) so that both low- and
    high-frequency content is present.
    """
    noise = rng.standard_normal((height, width))
    texture = _box_blur(noise, config.texture_smoothness)
    std = texture.std()
    if std > 0:
        texture = texture / std * config.texture_scale
    world = 128.0 + texture
    # Structured vertical stripes: sharp edges survive blurring and give
    # the panning sequences high-contrast detail like GARDEN's flowerbeds.
    n_stripes = max(2, width // 48)
    xs = rng.integers(0, width, size=n_stripes)
    stripe_w = rng.integers(2, 8, size=n_stripes)
    stripe_amp = rng.uniform(-60, 60, size=n_stripes)
    for x, w, amp in zip(xs, stripe_w, stripe_amp):
        world[:, x : x + int(w)] += amp
    return world


def _bilinear_crop(
    world: np.ndarray, y0: float, x0: float, height: int, width: int
) -> np.ndarray:
    """Crop a window at a fractional position with bilinear interpolation.

    Fractional positions are what make camera pan and jitter sub-pixel:
    the cropped content is a blend of neighbouring world pixels, which
    integer-pel motion estimation can never reproduce exactly.
    """
    yi, xi = int(np.floor(y0)), int(np.floor(x0))
    fy, fx = y0 - yi, x0 - xi
    a = world[yi : yi + height + 1, xi : xi + width + 1]
    top = a[:height, :width] * (1 - fx) + a[:height, 1 : width + 1] * fx
    bottom = a[1 : height + 1, :width] * (1 - fx) + a[1 : height + 1, 1 : width + 1] * fx
    return top * (1 - fy) + bottom * fy


def _paint_object(
    canvas: np.ndarray,
    center_y: float,
    center_x: float,
    radius: int,
    fill: np.ndarray,
    offset_y: float,
    offset_x: float,
) -> None:
    """Composite an elliptical foreground patch onto ``canvas`` in place.

    The fill texture is translated by ``(offset_y, offset_x)`` so the
    object's *content* moves with the object (sub-pixel, bilinear) — a
    moving mask over static texture would generate almost no inter
    residual, which is not how real foreground motion behaves.
    """
    height, width = canvas.shape
    pad = 16
    offset_y = float(np.clip(offset_y, -(pad - 1), pad - 1))
    offset_x = float(np.clip(offset_x, -(pad - 1), pad - 1))
    padded_fill = np.pad(fill, pad, mode="reflect")
    moved_fill = _bilinear_crop(
        padded_fill, pad - offset_y, pad - offset_x, height, width
    )
    ys = np.arange(height)[:, None]
    xs = np.arange(width)[None, :]
    # A head-like ellipse: 1.3x taller than wide.
    mask = ((ys - center_y) / (1.3 * radius)) ** 2 + ((xs - center_x) / radius) ** 2 <= 1.0
    canvas[mask] = moved_fill[mask]


def generate_sequence(config: SyntheticConfig, name: str = "synthetic") -> VideoSequence:
    """Render a synthetic sequence from a :class:`SyntheticConfig`."""
    rng = np.random.default_rng(config.seed)
    total_pan = abs(config.pan_speed) * config.n_frames
    world_w = config.width + int(np.ceil(total_pan)) + 32
    world_h = config.height + 32
    world = _world_texture(rng, world_h, world_w, config)

    # Foreground texture is generated once so the object is temporally
    # stable (its *position* moves, its *content* does not).
    object_fill = 128.0 + _box_blur(
        rng.standard_normal((config.height, config.width)), 2
    ) * config.texture_scale
    object_fill += 25.0  # foreground slightly brighter than background

    # Smooth spatial phase field for the temporal texture drift: each
    # region of the world modulates with its own phase, so the change
    # between consecutive frames is spatially coherent (like lighting or
    # sub-pixel motion), not per-pixel noise the quantizer would kill.
    if config.texture_drift > 0:
        drift_phase = _box_blur(rng.standard_normal((world_h, world_w)), 8)
        std = drift_phase.std()
        if std > 0:
            drift_phase = drift_phase / std * np.pi
    else:
        drift_phase = None

    if config.chroma:
        # Smooth colour fields at 4:2:0 resolution; they pan with the
        # scene so chroma motion tracks luma motion.
        cb_world = 128.0 + _box_blur(
            rng.standard_normal((world_h // 2 + 2, world_w // 2 + 2)), 6
        ) * 18.0
        cr_world = 128.0 + _box_blur(
            rng.standard_normal((world_h // 2 + 2, world_w // 2 + 2)), 6
        ) * 18.0

    frames = []
    pan_offset = 0.0
    jitter_y = jitter_x = 0.0
    for k in range(config.n_frames):
        if k >= config.pan_start_frame:
            pan_offset += config.pan_speed
        if config.camera_jitter > 0:
            # Mean-reverting random walk: shake without wandering away.
            jitter_y = 0.7 * jitter_y + rng.normal(0.0, config.camera_jitter)
            jitter_x = 0.7 * jitter_x + rng.normal(0.0, config.camera_jitter)
            jitter_y = float(np.clip(jitter_y, -3.0, 3.0))
            jitter_x = float(np.clip(jitter_x, -3.0, 3.0))
        x0 = abs(pan_offset) if config.pan_speed >= 0 else total_pan - abs(pan_offset)
        x0 = min(max(x0 + jitter_x + 4.0, 0.0), world_w - config.width - 2.0)
        y0 = min(max(16.0 + jitter_y, 0.0), world_h - config.height - 2.0)
        canvas = _bilinear_crop(world, y0, x0, config.height, config.width)

        if drift_phase is not None:
            omega = 2.0 * np.pi * k / config.texture_drift_period
            yi, xi = int(y0), int(x0)
            local_phase = drift_phase[
                yi : yi + config.height, xi : xi + config.width
            ]
            canvas += config.texture_drift * np.sin(local_phase + omega)

        if config.object_radius > 0:
            phase = 2.0 * np.pi * k / max(config.object_motion_period, 1)
            sway = 0.5 * config.object_motion_amplitude * np.sin(phase)
            bob = 0.25 * config.object_motion_amplitude * np.sin(2.1 * phase + 0.7)
            _paint_object(
                canvas,
                center_y=config.height * 0.55 + bob,
                center_x=config.width * 0.5 + sway,
                radius=config.object_radius,
                fill=object_fill,
                offset_y=bob,
                offset_x=sway,
            )

        if config.sensor_noise > 0:
            canvas = canvas + rng.normal(0.0, config.sensor_noise, canvas.shape)

        cb = cr = None
        if config.chroma:
            half_h, half_w = config.height // 2, config.width // 2
            cb = _bilinear_crop(cb_world, y0 / 2, x0 / 2, half_h, half_w)
            cr = _bilinear_crop(cr_world, y0 / 2, x0 / 2, half_h, half_w)
            if config.object_radius > 0:
                # Warm tint on the foreground (skin-tone-ish: Cr up).
                ys = np.arange(half_h)[:, None]
                xs = np.arange(half_w)[None, :]
                phase = 2.0 * np.pi * k / max(config.object_motion_period, 1)
                sway = 0.25 * config.object_motion_amplitude * np.sin(phase)
                mask = (
                    (ys - config.height * 0.275) / (0.65 * config.object_radius)
                ) ** 2 + (
                    (xs - (config.width * 0.25 + sway / 2))
                    / (0.5 * config.object_radius)
                ) ** 2 <= 1.0
                cr = np.where(mask, cr + 25.0, cr)
                cb = np.where(mask, cb - 10.0, cb)
            cb = np.clip(cb, 0, 255).astype(np.uint8)
            cr = np.clip(cr, 0, 255).astype(np.uint8)

        frames.append(
            Frame(np.clip(canvas, 0, 255).astype(np.uint8), k, cb, cr)
        )

    return VideoSequence(tuple(frames), name=name, fps=30.0)


def foreman_like(n_frames: int = 300, seed: int = 1) -> VideoSequence:
    """Talking head with moderate local motion and a late camera pan.

    Mirrors FOREMAN: a large foreground face swaying in front of a
    textured background, with the camera panning away in the final third.
    """
    config = SyntheticConfig(
        n_frames=n_frames,
        texture_scale=35.0,
        texture_smoothness=3,
        pan_speed=5.0,
        pan_start_frame=(2 * n_frames) // 3,
        object_radius=30,
        object_motion_amplitude=26.0,
        object_motion_period=30,
        sensor_noise=0.6,
        texture_drift=3.0,
        texture_drift_period=45,
        camera_jitter=0.1,
        seed=seed,
    )
    return generate_sequence(config, name="foreman")


def akiyo_like(n_frames: int = 300, seed: int = 2) -> VideoSequence:
    """News anchor: static camera, small localized motion.

    Mirrors AKIYO: almost everything is temporally stationary, so inter
    coding is extremely cheap and intra refresh dominates the bitstream
    size.
    """
    config = SyntheticConfig(
        n_frames=n_frames,
        texture_scale=25.0,
        texture_smoothness=5,
        pan_speed=0.0,
        object_radius=24,
        object_motion_amplitude=12.0,
        object_motion_period=50,
        sensor_noise=0.5,
        texture_drift=1.5,
        texture_drift_period=70,
        seed=seed,
    )
    return generate_sequence(config, name="akiyo")


def garden_like(n_frames: int = 300, seed: int = 3) -> VideoSequence:
    """Flower garden: continuous high-detail global pan.

    Mirrors GARDEN: high-frequency texture translated uniformly every
    frame, making both intra and inter coding expensive and ME essential.
    """
    config = SyntheticConfig(
        n_frames=n_frames,
        texture_scale=55.0,
        texture_smoothness=1,
        pan_speed=2.6,
        pan_start_frame=0,
        object_radius=0,
        sensor_noise=0.8,
        texture_drift=4.0,
        texture_drift_period=35,
        camera_jitter=0.1,
        seed=seed,
    )
    return generate_sequence(config, name="garden")


#: Name → generator map used by the benchmark harness.
SEQUENCE_GENERATORS: Dict[str, Callable[[int], VideoSequence]] = {
    "foreman": foreman_like,
    "akiyo": akiyo_like,
    "garden": garden_like,
}
